// Unit and property tests for the multi-load scheduling engine:
// MultiLoadSolver's pipelined dispatch recurrence, the per-installment
// invariant checker, and the per-load DLS-LBL payment scaling.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "check/contracts.hpp"
#include "check/multiload_invariants.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/dls_lbl.hpp"
#include "multiload/payments.hpp"
#include "multiload/solver.hpp"
#include "net/networks.hpp"
#include "payment/ledger.hpp"
#include "sim/multiload_execution.hpp"

namespace {

namespace check = dls::check;
using dls::common::Rng;
using dls::core::assess_compliant;
using dls::core::CounterfactualMechanism;
using dls::core::DlsLblResult;
using dls::core::MechanismConfig;
using dls::dlt::solve_linear_boundary;
using dls::multiload::assess_loads;
using dls::multiload::dispatch_order;
using dls::multiload::DispatchPolicy;
using dls::multiload::installment_size;
using dls::multiload::LoadSpec;
using dls::multiload::MultiLoadAssessment;
using dls::multiload::MultiLoadConfig;
using dls::multiload::MultiLoadMechanism;
using dls::multiload::MultiLoadSchedule;
using dls::multiload::MultiLoadSolver;
using dls::multiload::post_to_ledger;
using dls::net::LinearNetwork;
using dls::payment::Ledger;

LinearNetwork test_chain() {
  return LinearNetwork({1.0, 1.2, 0.9, 1.1}, {0.15, 0.1, 0.2});
}

TEST(InstallmentSize, ConservesTotalBitExactly) {
  for (const double total : {1.0, 0.3, 7.25, 1e-3}) {
    for (const std::size_t count : {std::size_t{1}, std::size_t{2},
                                    std::size_t{3}, std::size_t{7}}) {
      const double even = total / static_cast<double>(count);
      double tail = installment_size(total, count, count - 1);
      // The last chunk is the exact remainder of the even chunks.
      EXPECT_EQ(tail, total - even * static_cast<double>(count - 1));
      for (std::size_t i = 0; i + 1 < count; ++i) {
        EXPECT_EQ(installment_size(total, count, i), even);
      }
    }
  }
}

TEST(DispatchOrder, FifoKeepsLoadsContiguous) {
  const std::vector<LoadSpec> loads = {{1, 1.0, 0.5, 0.0},
                                       {2, 1.0, 0.0, 0.0},
                                       {3, 1.0, 0.5, 0.0}};
  MultiLoadConfig config;
  config.installments_per_load = 2;
  const auto order = dispatch_order(loads, config);
  ASSERT_EQ(order.size(), 6u);
  // Release order with a stable tie-break: load 2 (release 0) first,
  // then loads 1 and 3 in input order; chunks contiguous per load.
  const std::vector<std::pair<std::size_t, std::size_t>> expect = {
      {1, 0}, {1, 1}, {0, 0}, {0, 1}, {2, 0}, {2, 1}};
  EXPECT_EQ(order, expect);
}

TEST(DispatchOrder, InterleavedRoundRobins) {
  const std::vector<LoadSpec> loads = {{1, 1.0, 0.0, 0.0},
                                       {2, 1.0, 0.0, 0.0}};
  MultiLoadConfig config;
  config.policy = DispatchPolicy::kInterleaved;
  config.installments_per_load = 3;
  const auto order = dispatch_order(loads, config);
  const std::vector<std::pair<std::size_t, std::size_t>> expect = {
      {0, 0}, {1, 0}, {0, 1}, {1, 1}, {0, 2}, {1, 2}};
  EXPECT_EQ(order, expect);
}

TEST(MultiLoadSolver, SingleLoadBitIdenticalToAlgorithm1) {
  const LinearNetwork network = test_chain();
  const auto reference = solve_linear_boundary(network);
  MultiLoadSolver solver(network);
  for (const DispatchPolicy policy :
       {DispatchPolicy::kFifo, DispatchPolicy::kInterleaved}) {
    MultiLoadConfig config;
    config.policy = policy;
    const MultiLoadSchedule schedule = solver.solve({{7, 1.0}}, config);
    // Exact ==, not approximate: the engine must reproduce the
    // single-load solver bit for bit when given its exact problem.
    EXPECT_EQ(schedule.makespan, reference.makespan);
    EXPECT_EQ(schedule.serialized_makespan, reference.makespan);
    ASSERT_EQ(schedule.chain.alpha.size(), reference.alpha.size());
    for (std::size_t i = 0; i < reference.alpha.size(); ++i) {
      EXPECT_EQ(schedule.chain.alpha[i], reference.alpha[i]);
      EXPECT_EQ(schedule.chain.alpha_hat[i], reference.alpha_hat[i]);
    }
    ASSERT_EQ(schedule.installments.size(), 1u);
    EXPECT_EQ(schedule.installments[0].comm_start, 0.0);
    EXPECT_EQ(schedule.installments[0].completion, reference.makespan);
    EXPECT_FALSE(schedule.installments[0].blocked);
    EXPECT_TRUE(schedule.loads[0].deadline_met);
  }
}

TEST(MultiLoadSolver, SingleProcessorChainStillBitIdentical) {
  const LinearNetwork network({1.7}, {});
  const auto reference = solve_linear_boundary(network);
  MultiLoadSolver solver(network);
  const MultiLoadSchedule schedule = solver.solve({{1, 1.0}});
  EXPECT_EQ(schedule.makespan, reference.makespan);
}

TEST(MultiLoadSolver, FifoPipelinesBackToBackAtRootBound) {
  // With no ingress cost the root computes α_0 w_0 = makespan per unit
  // and is never idle, so pipelined FIFO exactly matches serialized
  // rounds — the engine must find that bound, not lose to it.
  MultiLoadSolver solver(test_chain());
  const std::vector<LoadSpec> loads = {{1, 1.0}, {2, 2.0}, {3, 0.5}};
  const MultiLoadSchedule schedule = solver.solve(loads);
  EXPECT_NEAR(schedule.makespan, schedule.serialized_makespan,
              1e-9 * schedule.serialized_makespan);
  // Later chunks are blocked on busy processors, not on data.
  EXPECT_TRUE(schedule.installments.back().blocked);
}

TEST(MultiLoadSolver, IngressStagingBeatsSerializedRounds) {
  // With a real ingress link, serialized rounds idle the chain during
  // every stage; pipelined dispatch stages load k+1 while load k
  // computes. Three equal loads at half-makespan staging cost must cut
  // a strict fraction of the serialized time.
  MultiLoadSolver solver(test_chain());
  MultiLoadConfig config;
  config.ingress_z = 0.5 * solver.chain().makespan;
  const std::vector<LoadSpec> loads = {{1, 1.0}, {2, 1.0}, {3, 1.0}};
  const MultiLoadSchedule schedule = solver.solve(loads, config);
  EXPECT_LT(schedule.makespan, 0.85 * schedule.serialized_makespan);
  // The lower bound still holds: staging the first load is serial.
  EXPECT_GT(schedule.makespan,
            loads[0].size * config.ingress_z + 3.0 * solver.chain().makespan -
                1e-9);
}

TEST(MultiLoadSolver, NonFiniteInputsAreRejected) {
  // NaN satisfies no ordered comparison, so naive `< 0` validation lets
  // NaN (and +inf sizes) through and every downstream timestamp turns
  // to garbage; the solver must reject them unconditionally, even at
  // DLS_CHECK_LEVEL=0 where the schedule audit is compiled out.
  const LinearNetwork network = test_chain();
  MultiLoadSolver solver(network);
  const MultiLoadConfig config;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(solver.solve({LoadSpec{1, inf, 0.0, 0.0}}, config),
               dls::InfeasibleError);
  EXPECT_THROW(solver.solve({LoadSpec{1, nan, 0.0, 0.0}}, config),
               dls::InfeasibleError);
  EXPECT_THROW(solver.solve({LoadSpec{1, 1.0, nan, 0.0}}, config),
               dls::InfeasibleError);
  EXPECT_THROW(solver.solve({LoadSpec{1, 1.0, 0.0, nan}}, config),
               dls::InfeasibleError);
  EXPECT_THROW(solver.solve({LoadSpec{1, 1.0, inf, 0.0}}, config),
               dls::InfeasibleError);
  MultiLoadConfig bad_ingress;
  bad_ingress.ingress_z = nan;
  EXPECT_THROW(solver.solve({LoadSpec{1, 1.0, 0.0, 0.0}}, bad_ingress),
               dls::Error);
}

TEST(MultiLoadSolver, ReleasesAndDeadlinesHonored) {
  MultiLoadSolver solver(test_chain());
  const double m = solver.chain().makespan;
  const std::vector<LoadSpec> loads = {
      {1, 1.0, 0.0, 2.0 * m},   // met: completes at m
      {2, 1.0, 5.0 * m, 0.0},   // released late, no deadline
      {3, 1.0, 0.0, 1.5 * m},   // missed: queued behind load 1
  };
  const MultiLoadSchedule schedule = solver.solve(loads);
  EXPECT_TRUE(schedule.loads[0].deadline_met);
  EXPECT_TRUE(schedule.loads[1].deadline_met);
  EXPECT_FALSE(schedule.loads[2].deadline_met);
  // The late release is honored: load 2 starts no earlier than 5m.
  EXPECT_GE(schedule.loads[1].start, 5.0 * m);
}

TEST(MultiLoadSolver, PipelinedNeverLosesAcrossRandomInstances) {
  Rng rng(20260809);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform(0.0, 6.0));
    const LinearNetwork network =
        LinearNetwork::random(n, rng, 0.5, 2.0, 0.05, 0.5);
    MultiLoadSolver solver(network);
    std::vector<LoadSpec> loads;
    const std::size_t count = 1 + static_cast<std::size_t>(rng.uniform(0.0, 4.0));
    for (std::size_t k = 0; k < count; ++k) {
      loads.push_back({k, rng.uniform(0.2, 3.0), 0.0, 0.0});
    }
    MultiLoadConfig config;
    config.policy = (trial % 2 == 0) ? DispatchPolicy::kFifo
                                     : DispatchPolicy::kInterleaved;
    config.installments_per_load = 1 + static_cast<std::size_t>(trial % 3);
    config.ingress_z = (trial % 4 == 0) ? 0.0 : rng.uniform(0.0, 1.0);
    // solve() runs check_multiload_schedule at DLS_CHECK_LEVEL >= 1:
    // every instance passing is the property under test.
    const MultiLoadSchedule schedule = solver.solve(loads, config);
    EXPECT_LE(schedule.makespan,
              schedule.serialized_makespan * (1.0 + 1e-9));
  }
}

TEST(MultiLoadChecker, CatchesCorruptedSchedules) {
  const LinearNetwork network = test_chain();
  MultiLoadSolver solver(network);
  const std::vector<LoadSpec> loads = {{1, 1.0}, {2, 1.5}};
  MultiLoadConfig config;
  config.installments_per_load = 2;
  const MultiLoadSchedule good = solver.solve(loads, config);

  const std::size_t before = check::violation_count();
  {
    MultiLoadSchedule bad = good;  // conservation: chunk size tampered
    bad.installments[1].size *= 1.01;
    EXPECT_THROW(
        check::check_multiload_schedule(network, loads, config, bad),
        check::ContractViolation);
  }
  {
    MultiLoadSchedule bad = good;  // causality: compute before arrival
    bad.installments[2].compute_start[1] =
        bad.installments[2].arrival[1] - 0.01;
    EXPECT_THROW(
        check::check_multiload_schedule(network, loads, config, bad),
        check::ContractViolation);
  }
  {
    MultiLoadSchedule bad = good;  // one-port: comm_start rewound
    bad.installments[3].comm_start = 0.0;
    EXPECT_THROW(
        check::check_multiload_schedule(network, loads, config, bad),
        check::ContractViolation);
  }
  {
    MultiLoadSchedule bad = good;  // makespan must cover every load
    bad.makespan *= 0.5;
    EXPECT_THROW(
        check::check_multiload_schedule(network, loads, config, bad),
        check::ContractViolation);
  }
  EXPECT_EQ(check::violation_count(), before + 4);
}

TEST(MultiLoadPayments, UnitLoadBitIdenticalToAssessCompliant) {
  const LinearNetwork network = test_chain();
  MechanismConfig mechanism;
  mechanism.solution_bonus_enabled = true;
  const DlsLblResult reference =
      assess_compliant(network, network.processing_times(), mechanism);
  const std::vector<LoadSpec> loads = {{42, 1.0}};
  const MultiLoadAssessment assessment =
      assess_loads(network, network.processing_times(), loads, mechanism);
  EXPECT_EQ(assessment.total_payment, reference.total_payment);
  EXPECT_EQ(assessment.mechanism_cost, reference.mechanism_cost);
  for (std::size_t j = 1; j < network.size(); ++j) {
    EXPECT_EQ(assessment.loads[0].payment[j],
              reference.processors[j].money.payment);
  }
}

TEST(MultiLoadPayments, ScaleLinearlyExceptFlatBonus) {
  const LinearNetwork network = test_chain();
  MechanismConfig mechanism;
  mechanism.solution_bonus_enabled = true;
  const std::vector<LoadSpec> loads = {{1, 1.0}, {2, 3.0}};
  const MultiLoadAssessment assessment =
      assess_loads(network, network.processing_times(), loads, mechanism);
  const auto& unit = assessment.loads[0];
  const auto& tripled = assessment.loads[1];
  for (std::size_t j = 1; j < network.size(); ++j) {
    // Compensation and bonus scale with the units processed; the
    // Theorem 5.2 solution bonus is flat per verified solution.
    EXPECT_DOUBLE_EQ(tripled.compensation[j], 3.0 * unit.compensation[j]);
    EXPECT_DOUBLE_EQ(tripled.bonus[j], 3.0 * unit.bonus[j]);
    EXPECT_DOUBLE_EQ(tripled.solution_bonus[j], unit.solution_bonus[j]);
    EXPECT_NEAR(tripled.payment[j] - tripled.solution_bonus[j],
                3.0 * (unit.payment[j] - unit.solution_bonus[j]), 1e-12);
  }
}

TEST(MultiLoadPayments, LedgerConservesAcrossLoads) {
  const LinearNetwork network = test_chain();
  MechanismConfig mechanism;
  mechanism.solution_bonus_enabled = true;
  const std::vector<LoadSpec> loads = {{1, 0.5}, {2, 2.0}, {3, 1.0}};
  const MultiLoadAssessment assessment =
      assess_loads(network, network.processing_times(), loads, mechanism);
  Ledger ledger;
  post_to_ledger(ledger, assessment, /*first_account=*/100);
  EXPECT_NEAR(ledger.conservation_residual(), 0.0, 1e-12);
  EXPECT_NEAR(ledger.mechanism_outlay(), assessment.mechanism_cost, 1e-9);
  // Each strategic processor's account holds its per-load payments.
  for (std::size_t j = 1; j < network.size(); ++j) {
    double expect = 0.0;
    for (const auto& load : assessment.loads) expect += load.payment[j];
    EXPECT_NEAR(ledger.balance(100 + static_cast<dls::payment::AccountId>(j)),
                expect, 1e-9);
  }
}

TEST(MultiLoadMechanism, MatchesCounterfactualMechanismAtUnitSize) {
  const LinearNetwork network = test_chain();
  const MechanismConfig mechanism;
  CounterfactualMechanism reference(network, network.processing_times(),
                                    mechanism);
  MultiLoadMechanism scaled(network, network.processing_times(), mechanism);
  for (std::size_t j = 1; j < network.size(); ++j) {
    for (const double bid : {0.8, 1.0, 1.3}) {
      const double w = network.w(j) * bid;
      EXPECT_EQ(scaled.utility(j, w, network.w(j), 1.0),
                reference.utility(j, w, network.w(j)));
    }
  }
}

TEST(MultiLoadTrace, LanesHonorOnePortAndConserveLoad) {
  const LinearNetwork network = test_chain();
  const std::vector<LoadSpec> loads = {
      {1, 1.0, 0.0, 0.0}, {2, 2.0, 0.5, 0.0}, {3, 0.5, 1.0, 0.0}};
  for (const DispatchPolicy policy :
       {DispatchPolicy::kFifo, DispatchPolicy::kInterleaved}) {
    MultiLoadConfig config;
    config.policy = policy;
    config.installments_per_load = 2;
    config.ingress_z = 0.1;
    MultiLoadSolver solver(network);
    const MultiLoadSchedule schedule = solver.solve(loads, config);
    const dls::sim::MultiLoadTrace traced =
        dls::sim::trace_multiload(network, schedule);

    ASSERT_EQ(traced.lanes.size(), loads.size());
    EXPECT_EQ(traced.combined.check_one_port(), "");
    double expected_end = 0.0;
    for (const dls::multiload::Installment& inst : schedule.installments) {
      for (const double finish : inst.finish) {
        expected_end = std::max(expected_end, finish);
      }
    }
    EXPECT_EQ(traced.combined.end(), expected_end);
    EXPECT_EQ(traced.combined.processors(), network.size());

    for (std::size_t k = 0; k < loads.size(); ++k) {
      EXPECT_EQ(traced.lanes[k].check_one_port(), "");
      // kCompute amounts are size-scaled alpha fractions, so each lane's
      // computed work sums back to its load's size.
      double computed = 0.0;
      for (const dls::sim::Interval& interval : traced.lanes[k].intervals()) {
        if (interval.activity == dls::sim::Activity::kCompute) {
          computed += interval.amount;
        }
      }
      EXPECT_NEAR(computed, loads[k].size, 1e-12);
    }
  }
}

TEST(MultiLoadTrace, GanttRendersOneTitledLanePerLoad) {
  const LinearNetwork network = test_chain();
  const std::vector<LoadSpec> loads = {{7, 1.0, 0.0, 0.0},
                                       {9, 1.5, 0.0, 0.0}};
  MultiLoadConfig config;
  config.ingress_z = 0.05;
  MultiLoadSolver solver(network);
  const MultiLoadSchedule schedule = solver.solve(loads, config);
  std::ostringstream os;
  dls::sim::render_multiload_gantt(os, network, schedule);
  const std::string out = os.str();
  EXPECT_NE(out.find("load 7"), std::string::npos) << out;
  EXPECT_NE(out.find("load 9"), std::string::npos) << out;
}

TEST(MultiLoadMechanism, TruthfulBidDominatesPerLoad) {
  const LinearNetwork network = test_chain();
  const MechanismConfig mechanism;
  MultiLoadMechanism scaled(network, network.processing_times(), mechanism);
  for (const double size : {0.5, 1.0, 2.5}) {
    for (std::size_t j = 1; j < network.size(); ++j) {
      const double truthful =
          scaled.utility(j, network.w(j), network.w(j), size);
      std::vector<double> bids;
      for (double f = 0.6; f <= 1.8; f += 0.1) bids.push_back(network.w(j) * f);
      std::vector<double> utilities(bids.size());
      scaled.utility_curve(j, bids, size, utilities);
      for (std::size_t k = 0; k < bids.size(); ++k) {
        EXPECT_LE(utilities[k], truthful + 1e-9)
            << "size " << size << " P" << j << " bid " << bids[k];
      }
    }
  }
}

}  // namespace
