// Tests for the incremental counterfactual engine: the O(j) prefix
// re-solve must agree with a from-scratch Algorithm 1 run on the
// modified chain to machine precision, across random chains, every
// index, and the degenerate 1-2 processor networks; and the batched
// utility engine must reproduce core::utility_under_bid exactly.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/dls_lbl.hpp"
#include "dlt/counterfactual.hpp"
#include "dlt/linear.hpp"
#include "net/networks.hpp"

namespace {

using dls::common::Rng;
using dls::core::CounterfactualMechanism;
using dls::core::MechanismConfig;
using dls::dlt::CounterfactualSolver;
using dls::dlt::LinearSolution;
using dls::dlt::solve_linear_boundary;
using dls::net::LinearNetwork;

constexpr double kTol = 1e-12;

void expect_rebid_matches_full(const LinearNetwork& base, std::size_t index,
                               double bid) {
  CounterfactualSolver solver(base);
  std::vector<double> alpha;
  const CounterfactualSolver::Rebid r =
      solver.rebid_allocation(index, bid, alpha);
  const LinearSolution full =
      solve_linear_boundary(base.with_processing_time(index, bid));
  EXPECT_NEAR(r.alpha, full.alpha[index], kTol);
  EXPECT_NEAR(r.alpha_hat, full.alpha_hat[index], kTol);
  EXPECT_NEAR(r.equivalent_w, full.equivalent_w[index], kTol);
  EXPECT_NEAR(r.makespan, full.makespan, kTol);
  if (index > 0) {
    EXPECT_NEAR(r.alpha_hat_pred, full.alpha_hat[index - 1], kTol);
  }
  ASSERT_EQ(alpha.size(), full.alpha.size());
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    EXPECT_NEAR(alpha[i], full.alpha[i], kTol) << "alpha[" << i << "]";
  }
}

TEST(CounterfactualSolver, MatchesFullSolveAcrossRandomChains) {
  Rng rng(2026);
  for (int rep = 0; rep < 40; ++rep) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(3, 24));
    const LinearNetwork base =
        LinearNetwork::random(n, rng, 0.5, 5.0, 0.05, 0.5);
    for (std::size_t index = 0; index < n; ++index) {
      const double mult = rng.log_uniform(0.2, 5.0);
      expect_rebid_matches_full(base, index, base.w(index) * mult);
    }
  }
}

TEST(CounterfactualSolver, TruthfulRebidReproducesBaseBitForBit) {
  Rng rng(7);
  const LinearNetwork base = LinearNetwork::random(12, rng, 0.5, 5.0,
                                                   0.05, 0.5);
  CounterfactualSolver solver(base);
  for (std::size_t index = 0; index < base.size(); ++index) {
    const CounterfactualSolver::Rebid r = solver.rebid(index, base.w(index));
    // Identical arithmetic on identical inputs: exact equality, not NEAR.
    EXPECT_EQ(r.alpha, solver.base().alpha[index]);
    EXPECT_EQ(r.alpha_hat, solver.base().alpha_hat[index]);
    EXPECT_EQ(r.equivalent_w, solver.base().equivalent_w[index]);
    EXPECT_EQ(r.makespan, solver.base().makespan);
  }
}

TEST(CounterfactualSolver, DegenerateOneProcessorChain) {
  const LinearNetwork base({2.0}, {});
  CounterfactualSolver solver(base);
  std::vector<double> alpha;
  const CounterfactualSolver::Rebid r = solver.rebid_allocation(0, 3.5, alpha);
  EXPECT_DOUBLE_EQ(r.alpha, 1.0);
  EXPECT_DOUBLE_EQ(r.alpha_hat, 1.0);
  EXPECT_DOUBLE_EQ(r.equivalent_w, 3.5);
  EXPECT_DOUBLE_EQ(r.makespan, 3.5);
  ASSERT_EQ(alpha.size(), 1u);
  EXPECT_DOUBLE_EQ(alpha[0], 1.0);
}

TEST(CounterfactualSolver, DegenerateTwoProcessorChain) {
  const LinearNetwork base({1.0, 2.0}, {0.25});
  for (const std::size_t index : {std::size_t{0}, std::size_t{1}}) {
    for (const double bid : {0.3, 1.0, 2.0, 7.5}) {
      expect_rebid_matches_full(base, index, bid);
    }
  }
}

TEST(CounterfactualSolver, RepeatedRebidsDoNotContaminateEachOther) {
  Rng rng(11);
  const LinearNetwork base = LinearNetwork::random(9, rng, 0.5, 5.0,
                                                   0.05, 0.5);
  CounterfactualSolver solver(base);
  // Interleave rebids at different indices and re-check against full
  // solves; scratch reuse must not leak state between queries.
  const std::size_t order[] = {7, 1, 8, 0, 4, 7, 2, 1};
  for (const std::size_t index : order) {
    const double bid = base.w(index) * rng.log_uniform(0.3, 3.0);
    const CounterfactualSolver::Rebid r = solver.rebid(index, bid);
    const LinearSolution full =
        solve_linear_boundary(base.with_processing_time(index, bid));
    EXPECT_NEAR(r.alpha, full.alpha[index], kTol);
    EXPECT_NEAR(r.makespan, full.makespan, kTol);
  }
}

TEST(CounterfactualSolver, Validation) {
  const LinearNetwork base({1.0, 2.0}, {0.25});
  CounterfactualSolver solver(base);
  EXPECT_THROW(solver.rebid(2, 1.0), dls::PreconditionError);
  EXPECT_THROW(solver.rebid(0, 0.0), dls::PreconditionError);
  EXPECT_THROW(solver.rebid(1, -1.0), dls::PreconditionError);
}

// ---------------------------------------------------------------------

TEST(CounterfactualMechanism, MatchesAssessmentPathExactly) {
  // The batched engine must agree with the full-assessment utility (two
  // Algorithm 1 runs + n-processor payment arithmetic) bit-for-bit: it
  // performs the same arithmetic on the same prefix.
  Rng rng(31);
  const MechanismConfig config;
  for (int rep = 0; rep < 20; ++rep) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 16));
    const LinearNetwork truth =
        LinearNetwork::random(n, rng, 0.5, 5.0, 0.05, 0.5);
    CounterfactualMechanism mech(truth, truth.processing_times(), config);
    for (std::size_t index = 1; index < n; ++index) {
      const double bid = truth.w(index) * rng.log_uniform(0.2, 5.0);
      const double via_full = [&] {
        const LinearNetwork bids = truth.with_processing_time(index, bid);
        std::vector<double> actual(truth.processing_times().begin(),
                                   truth.processing_times().end());
        const auto result = dls::core::assess_compliant(bids, actual, config);
        return result.processors[index].money.utility;
      }();
      EXPECT_EQ(mech.utility(index, bid, truth.w(index)), via_full)
          << "n=" << n << " index=" << index << " bid=" << bid;
    }
  }
}

TEST(CounterfactualMechanism, UtilityCurveMatchesPointQueries) {
  Rng rng(5);
  const MechanismConfig config;
  const LinearNetwork truth =
      LinearNetwork::random(10, rng, 0.5, 5.0, 0.05, 0.5);
  CounterfactualMechanism mech(truth, truth.processing_times(), config);
  const std::size_t index = 4;
  std::vector<double> bids;
  for (int k = 0; k < 33; ++k) {
    bids.push_back(truth.w(index) * (0.25 + 0.15 * k));
  }
  std::vector<double> curve(bids.size());
  mech.utility_curve(index, bids, curve);
  for (std::size_t k = 0; k < bids.size(); ++k) {
    EXPECT_EQ(curve[k], mech.utility(index, bids[k], truth.w(index)));
    EXPECT_EQ(curve[k],
              dls::core::utility_under_bid(truth, index, bids[k],
                                           truth.w(index), config));
  }
}

TEST(CounterfactualMechanism, SlowExecutionMatchesAssessment) {
  // Case (ii) of Lemma 5.3: deviant execution speed under any bid.
  Rng rng(13);
  const MechanismConfig config;
  const LinearNetwork truth =
      LinearNetwork::random(7, rng, 0.5, 5.0, 0.05, 0.5);
  CounterfactualMechanism mech(truth, truth.processing_times(), config);
  for (std::size_t index = 1; index < truth.size(); ++index) {
    for (const double slow : {1.0, 1.2, 1.9}) {
      const double actual = truth.w(index) * slow;
      const double expected = dls::core::utility_under_bid(
          truth, index, truth.w(index), actual, config);
      EXPECT_EQ(mech.utility(index, truth.w(index), actual), expected);
    }
  }
}

TEST(CounterfactualMechanism, Validation) {
  const LinearNetwork truth({1.0, 2.0}, {0.25});
  CounterfactualMechanism mech(truth, truth.processing_times(),
                               MechanismConfig{});
  EXPECT_THROW(mech.utility(0, 1.0, 1.0), dls::PreconditionError);
  EXPECT_THROW(mech.utility(2, 1.0, 1.0), dls::PreconditionError);
  EXPECT_THROW(mech.utility(1, 1.0, 0.0), dls::PreconditionError);
  EXPECT_THROW(CounterfactualMechanism(LinearNetwork({1.0}, {}),
                                       std::vector<double>{1.0},
                                       MechanismConfig{}),
               dls::PreconditionError);
}

}  // namespace
