// Concurrency stress for the scheduling service, designed to run under
// TSan: many clients hammer one service through the framed transport
// while the admission queue sheds, deadlines expire and the cache
// churns. Every request must get exactly one well-typed response and
// solved answers must stay bit-identical per topology. DLS_SERVE_SOAK
// multiplies the request volume for the CI soak job.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "codec/bytes.hpp"
#include "common/rng.hpp"
#include "protocol/recovery.hpp"
#include "serve/client.hpp"
#include "serve/service.hpp"

namespace {

using dls::serve::ScheduleOptions;
using dls::serve::ScheduleResponse;
using dls::serve::ScheduleStatus;
using dls::serve::SchedulerClient;
using dls::serve::SchedulerService;
using dls::serve::ServiceConfig;

int soak_multiplier() {
  const char* raw = std::getenv("DLS_SERVE_SOAK");
  if (raw == nullptr) return 1;
  const int parsed = std::atoi(raw);
  return parsed >= 1 ? parsed : 1;
}

struct Topology {
  std::vector<double> w;
  std::vector<double> z;
};

std::vector<Topology> random_topologies(std::size_t count,
                                        std::uint64_t seed) {
  dls::common::Rng rng(seed);
  std::vector<Topology> out(count);
  for (Topology& topo : out) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 10));
    topo.w.resize(n);
    topo.z.resize(n - 1);
    for (double& x : topo.w) x = rng.uniform(0.2, 3.0);
    for (double& x : topo.z) x = rng.uniform(0.01, 0.5);
  }
  return out;
}

TEST(ServeStressTest, ConcurrentClientsConvergeBitIdentically) {
  const int requests_per_client = 20 * soak_multiplier();
  constexpr std::size_t kClients = 8;
  const std::vector<Topology> topos = random_topologies(5, 20260806);

  ServiceConfig config;
  config.queue_capacity = 4;  // small enough that shedding really happens
  config.cache_capacity = 3;  // smaller than the topology set: eviction
  SchedulerService service(config);

  dls::protocol::HeartbeatConfig policy;
  policy.period = 0.001;
  policy.backoff_factor = 1.5;
  policy.max_backoff = 0.02;
  policy.retry_budget = 400;

  // One answer vector per topology per client; merged and cross-checked
  // after the fact. A slot left empty means a lost response.
  std::vector<std::map<std::size_t, dls::codec::Bytes>> seen(kClients);
  std::vector<std::uint64_t> ok_count(kClients, 0);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      SchedulerClient client(service.connect());
      for (int i = 0; i < requests_per_client; ++i) {
        const Topology& topo = topos[(c + static_cast<std::size_t>(i)) %
                                     topos.size()];
        ScheduleResponse response = client.schedule_with_retry(
            topo.w, topo.z, ScheduleOptions{}, policy);
        if (response.status != ScheduleStatus::kOk) continue;
        ++ok_count[c];
        response.request_id = 0;
        response.cache_hit = false;
        const std::size_t t = (c + static_cast<std::size_t>(i)) %
                              topos.size();
        seen[c].emplace(t, encode_schedule_response(response));
      }
      client.close();
    });
  }
  for (std::thread& t : clients) t.join();

  // Every client solved every topology at least once, and all agree on
  // the bytes — cache hits, evictions and re-solves included.
  std::map<std::size_t, dls::codec::Bytes> truth;
  std::uint64_t total_ok = 0;
  for (std::size_t c = 0; c < kClients; ++c) {
    total_ok += ok_count[c];
    EXPECT_EQ(seen[c].size(), topos.size()) << "client " << c;
    for (const auto& [t, body] : seen[c]) {
      const auto [it, inserted] = truth.emplace(t, body);
      if (!inserted) {
        EXPECT_EQ(body, it->second)
            << "client " << c << " topology " << t << " diverged";
      }
    }
  }
  // The retry budget is generous; virtually everything lands. The shed
  // path still fires (observable in stats) without costing answers.
  EXPECT_EQ(total_ok, kClients * static_cast<std::uint64_t>(
                                     requests_per_client));
  EXPECT_EQ(service.stats().ok, total_ok);
  service.stop();
}

TEST(ServeStressTest, MixedDeadlinesNeverWedgeTheService) {
  const int requests_per_client = 15 * soak_multiplier();
  constexpr std::size_t kClients = 6;
  const std::vector<Topology> topos = random_topologies(4, 7);

  ServiceConfig config;
  config.queue_capacity = 3;
  config.cache_capacity = 8;
  SchedulerService service(config);

  std::vector<std::uint64_t> answered(kClients, 0);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      SchedulerClient client(service.connect());
      for (int i = 0; i < requests_per_client; ++i) {
        const Topology& topo = topos[static_cast<std::size_t>(i) %
                                     topos.size()];
        ScheduleOptions options;
        // A third of the traffic carries a 1 µs deadline — dead on
        // arrival almost always; the rest is unconstrained.
        if (i % 3 == 0) options.deadline_us = 1.0;
        const ScheduleResponse response =
            client.schedule(topo.w, topo.z, options);
        // Every status is acceptable; what matters is that exactly one
        // response arrives per request, with a sane shape.
        ++answered[c];
        if (response.status == ScheduleStatus::kOk) {
          EXPECT_EQ(response.alpha.size(), topo.w.size());
        }
      }
      client.close();
    });
  }
  for (std::thread& t : clients) t.join();

  std::uint64_t total = 0;
  for (const std::uint64_t a : answered) total += a;
  EXPECT_EQ(total, kClients * static_cast<std::uint64_t>(
                                  requests_per_client));
  const dls::serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.ok + stats.shed + stats.expired + stats.errors, total);
  service.stop();
}

}  // namespace
