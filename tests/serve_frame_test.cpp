// Transport-layer tests for the scheduling service: Pipe semantics
// (ordering, atomic writes, close/EOF discipline) and the framing codec
// (identity round trips, strict rejection of truncation, trailing
// bytes, bad magic/version/type and oversized lengths) — both on flat
// buffers and across a live PipeEnd.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "codec/bytes.hpp"
#include "serve/frame.hpp"
#include "serve/pipe.hpp"

namespace {

using dls::codec::Bytes;
using dls::codec::DecodeError;
using dls::serve::Frame;
using dls::serve::FrameType;
using dls::serve::kFrameHeaderSize;
using dls::serve::make_pipe;
using dls::serve::Pipe;
using dls::serve::PipeEnd;
using dls::serve::TransportError;

Bytes bytes_of(std::initializer_list<int> values) {
  Bytes out;
  for (const int v : values) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

TEST(PipeTest, BytesArriveInOrder) {
  Pipe pipe = make_pipe();
  pipe.a.write(bytes_of({1, 2, 3}));
  pipe.a.write(bytes_of({4, 5}));
  Bytes got(5);
  ASSERT_TRUE(pipe.b.read_exact(got));
  EXPECT_EQ(got, bytes_of({1, 2, 3, 4, 5}));
}

TEST(PipeTest, ReadBlocksUntilDataArrives) {
  Pipe pipe = make_pipe();
  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    pipe.a.write(bytes_of({42}));
  });
  Bytes got(1);
  ASSERT_TRUE(pipe.b.read_exact(got));
  EXPECT_EQ(got[0], 42);
  writer.join();
}

TEST(PipeTest, CleanCloseDrainsThenReportsEof) {
  Pipe pipe = make_pipe();
  pipe.a.write(bytes_of({7, 8}));
  pipe.a.close();
  Bytes got(2);
  ASSERT_TRUE(pipe.b.read_exact(got));  // buffered bytes still readable
  EXPECT_EQ(got, bytes_of({7, 8}));
  EXPECT_FALSE(pipe.b.read_exact(got));  // then clean EOF
}

TEST(PipeTest, CloseMidReadThrowsTransportError) {
  Pipe pipe = make_pipe();
  pipe.a.write(bytes_of({1}));
  pipe.a.close();
  Bytes got(2);  // more than was ever written: a torn read
  EXPECT_THROW(pipe.b.read_exact(got), TransportError);
}

TEST(PipeTest, WriteAfterPeerCloseThrows) {
  Pipe pipe = make_pipe();
  pipe.b.close();
  EXPECT_THROW(pipe.a.write(bytes_of({1})), TransportError);
}

TEST(PipeTest, DroppedEndUnblocksPeer) {
  Pipe pipe = make_pipe();
  std::thread dropper([end = std::move(pipe.a)]() mutable {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    // `end` destroyed here — the peer's blocked read must wake with EOF.
  });
  Bytes got(1);
  EXPECT_FALSE(pipe.b.read_exact(got));
  dropper.join();
}

TEST(PipeTest, ConcurrentWritesStayAtomic) {
  // Two writers blast distinct fixed-size records through one end; the
  // reader must see every record intact (never interleaved bytes).
  Pipe pipe = make_pipe();
  constexpr int kRecords = 200;
  constexpr std::size_t kSize = 64;
  auto writer = [&](std::uint8_t tag) {
    for (int i = 0; i < kRecords; ++i) {
      Bytes record(kSize, tag);
      pipe.a.write(record);
    }
  };
  std::thread w1(writer, std::uint8_t{0xAA});
  std::thread w2(writer, std::uint8_t{0x55});
  int seen_a = 0, seen_b = 0;
  for (int i = 0; i < 2 * kRecords; ++i) {
    Bytes record(kSize);
    ASSERT_TRUE(pipe.b.read_exact(record));
    const std::uint8_t tag = record[0];
    for (const std::uint8_t byte : record) {
      ASSERT_EQ(byte, tag) << "interleaved write detected";
    }
    (tag == 0xAA ? seen_a : seen_b)++;
  }
  w1.join();
  w2.join();
  EXPECT_EQ(seen_a, kRecords);
  EXPECT_EQ(seen_b, kRecords);
}

TEST(FrameTest, EncodeDecodeIdentityForEveryType) {
  for (const FrameType type :
       {FrameType::kScheduleRequest, FrameType::kScheduleResponse,
        FrameType::kBid, FrameType::kAllocation, FrameType::kReport,
        FrameType::kPayment}) {
    Frame frame{type, bytes_of({1, 2, 3, 4, 5})};
    const Frame decoded = dls::serve::decode_frame(
        dls::serve::encode_frame(frame));
    EXPECT_EQ(decoded.type, type);
    EXPECT_EQ(decoded.payload, frame.payload);
  }
  // Empty payloads are legal frames too.
  const Frame empty = dls::serve::decode_frame(
      dls::serve::encode_frame(Frame{FrameType::kBid, {}}));
  EXPECT_TRUE(empty.payload.empty());
}

TEST(FrameTest, EveryTruncationPrefixIsRejected) {
  const Bytes wire = dls::serve::encode_frame(
      Frame{FrameType::kScheduleRequest, bytes_of({9, 8, 7})});
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_THROW(dls::serve::decode_frame(std::span(wire.data(), len)),
                 DecodeError)
        << "frame prefix of " << len << " bytes accepted";
  }
}

TEST(FrameTest, TrailingBytesAreRejected) {
  Bytes wire = dls::serve::encode_frame(
      Frame{FrameType::kScheduleRequest, bytes_of({1})});
  wire.push_back(0x00);
  EXPECT_THROW(dls::serve::decode_frame(wire), DecodeError);
}

TEST(FrameTest, BadMagicVersionTypeAndLengthAreRejected) {
  const Bytes good = dls::serve::encode_frame(
      Frame{FrameType::kScheduleRequest, bytes_of({1, 2})});

  Bytes bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(dls::serve::decode_frame(bad_magic), DecodeError);

  Bytes bad_version = good;
  bad_version[4] = 0x7F;
  EXPECT_THROW(dls::serve::decode_frame(bad_version), DecodeError);

  Bytes bad_type = good;
  bad_type[5] = 0;  // below the FrameType range
  EXPECT_THROW(dls::serve::decode_frame(bad_type), DecodeError);
  bad_type[5] = 200;  // above it
  EXPECT_THROW(dls::serve::decode_frame(bad_type), DecodeError);

  Bytes bad_length = good;
  bad_length[9] = 0xFF;  // announces a payload far beyond the cap
  EXPECT_THROW(dls::serve::decode_frame(bad_length), DecodeError);
}

TEST(FrameTest, RoundTripsAcrossPipe) {
  Pipe pipe = make_pipe();
  const Frame sent{FrameType::kReport, bytes_of({10, 20, 30})};
  dls::serve::write_frame(pipe.a, sent);
  const std::optional<Frame> got = dls::serve::read_frame(pipe.b);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, sent.type);
  EXPECT_EQ(got->payload, sent.payload);
}

TEST(FrameTest, CleanEofBetweenFramesIsNullopt) {
  Pipe pipe = make_pipe();
  dls::serve::write_frame(pipe.a, Frame{FrameType::kBid, bytes_of({1})});
  pipe.a.close();
  EXPECT_TRUE(dls::serve::read_frame(pipe.b).has_value());
  EXPECT_FALSE(dls::serve::read_frame(pipe.b).has_value());
}

TEST(FrameTest, EofInsideFrameIsTransportError) {
  Pipe pipe = make_pipe();
  const Bytes wire = dls::serve::encode_frame(
      Frame{FrameType::kBid, bytes_of({1, 2, 3, 4})});
  // Send the header plus part of the payload, then hang up.
  pipe.a.write(std::span(wire.data(), kFrameHeaderSize + 2));
  pipe.a.close();
  EXPECT_THROW(dls::serve::read_frame(pipe.b), TransportError);
}

TEST(FrameTest, MalformedHeaderOnStreamIsDecodeError) {
  Pipe pipe = make_pipe();
  Bytes wire = dls::serve::encode_frame(
      Frame{FrameType::kBid, bytes_of({1})});
  wire[0] ^= 0xFF;  // corrupt the magic
  pipe.a.write(wire);
  EXPECT_THROW(dls::serve::read_frame(pipe.b), DecodeError);
}

}  // namespace
