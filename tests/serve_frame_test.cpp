// Transport-layer tests for the scheduling service: Pipe semantics
// (ordering, atomic writes, close/EOF discipline) and the framing codec
// (identity round trips, strict rejection of truncation, trailing
// bytes, bad magic/version/type and oversized lengths) — both on flat
// buffers and across a live PipeEnd.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "codec/bytes.hpp"
#include "serve/frame.hpp"
#include "serve/pipe.hpp"

namespace {

using dls::codec::Bytes;
using dls::codec::DecodeError;
using dls::serve::Frame;
using dls::serve::FrameTruncationError;
using dls::serve::FrameType;
using dls::serve::FrameVersionError;
using dls::serve::kFrameHeaderSize;
using dls::serve::make_pipe;
using dls::serve::Pipe;
using dls::serve::PipeEnd;
using dls::serve::ReadOutcome;
using dls::serve::TransportError;
using dls::serve::TransportTimeout;

Bytes bytes_of(std::initializer_list<int> values) {
  Bytes out;
  for (const int v : values) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

TEST(PipeTest, BytesArriveInOrder) {
  Pipe pipe = make_pipe();
  pipe.a.write(bytes_of({1, 2, 3}));
  pipe.a.write(bytes_of({4, 5}));
  Bytes got(5);
  ASSERT_TRUE(pipe.b.read_exact(got));
  EXPECT_EQ(got, bytes_of({1, 2, 3, 4, 5}));
}

TEST(PipeTest, ReadBlocksUntilDataArrives) {
  Pipe pipe = make_pipe();
  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    pipe.a.write(bytes_of({42}));
  });
  Bytes got(1);
  ASSERT_TRUE(pipe.b.read_exact(got));
  EXPECT_EQ(got[0], 42);
  writer.join();
}

TEST(PipeTest, CleanCloseDrainsThenReportsEof) {
  Pipe pipe = make_pipe();
  pipe.a.write(bytes_of({7, 8}));
  pipe.a.close();
  Bytes got(2);
  ASSERT_TRUE(pipe.b.read_exact(got));  // buffered bytes still readable
  EXPECT_EQ(got, bytes_of({7, 8}));
  EXPECT_FALSE(pipe.b.read_exact(got));  // then clean EOF
}

TEST(PipeTest, CloseMidReadThrowsTransportError) {
  Pipe pipe = make_pipe();
  pipe.a.write(bytes_of({1}));
  pipe.a.close();
  Bytes got(2);  // more than was ever written: a torn read
  EXPECT_THROW(pipe.b.read_exact(got), TransportError);
}

TEST(PipeTest, WriteAfterPeerCloseThrows) {
  Pipe pipe = make_pipe();
  pipe.b.close();
  EXPECT_THROW(pipe.a.write(bytes_of({1})), TransportError);
}

TEST(PipeTest, DroppedEndUnblocksPeer) {
  Pipe pipe = make_pipe();
  std::thread dropper([end = std::move(pipe.a)]() mutable {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    // `end` destroyed here — the peer's blocked read must wake with EOF.
  });
  Bytes got(1);
  EXPECT_FALSE(pipe.b.read_exact(got));
  dropper.join();
}

TEST(PipeTest, ConcurrentWritesStayAtomic) {
  // Two writers blast distinct fixed-size records through one end; the
  // reader must see every record intact (never interleaved bytes).
  Pipe pipe = make_pipe();
  constexpr int kRecords = 200;
  constexpr std::size_t kSize = 64;
  auto writer = [&](std::uint8_t tag) {
    for (int i = 0; i < kRecords; ++i) {
      Bytes record(kSize, tag);
      pipe.a.write(record);
    }
  };
  std::thread w1(writer, std::uint8_t{0xAA});
  std::thread w2(writer, std::uint8_t{0x55});
  int seen_a = 0, seen_b = 0;
  for (int i = 0; i < 2 * kRecords; ++i) {
    Bytes record(kSize);
    ASSERT_TRUE(pipe.b.read_exact(record));
    const std::uint8_t tag = record[0];
    for (const std::uint8_t byte : record) {
      ASSERT_EQ(byte, tag) << "interleaved write detected";
    }
    (tag == 0xAA ? seen_a : seen_b)++;
  }
  w1.join();
  w2.join();
  EXPECT_EQ(seen_a, kRecords);
  EXPECT_EQ(seen_b, kRecords);
}

TEST(FrameTest, EncodeDecodeIdentityForEveryType) {
  for (const FrameType type :
       {FrameType::kScheduleRequest, FrameType::kScheduleResponse,
        FrameType::kBid, FrameType::kAllocation, FrameType::kReport,
        FrameType::kPayment}) {
    Frame frame{type, bytes_of({1, 2, 3, 4, 5})};
    const Frame decoded = dls::serve::decode_frame(
        dls::serve::encode_frame(frame));
    EXPECT_EQ(decoded.type, type);
    EXPECT_EQ(decoded.payload, frame.payload);
  }
  // Empty payloads are legal frames too.
  const Frame empty = dls::serve::decode_frame(
      dls::serve::encode_frame(Frame{FrameType::kBid, {}}));
  EXPECT_TRUE(empty.payload.empty());
}

TEST(FrameTest, EveryTruncationPrefixIsRejected) {
  const Bytes wire = dls::serve::encode_frame(
      Frame{FrameType::kScheduleRequest, bytes_of({9, 8, 7})});
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_THROW(dls::serve::decode_frame(std::span(wire.data(), len)),
                 DecodeError)
        << "frame prefix of " << len << " bytes accepted";
  }
}

TEST(FrameTest, BufferTruncationIsTypedAsCorruptedLengthNotPeerClose) {
  // Once the whole header is present, a short buffer means the length
  // field promised more than the capture holds — peer_closed() false.
  const Bytes wire = dls::serve::encode_frame(
      Frame{FrameType::kScheduleRequest, bytes_of({9, 8, 7})});
  for (std::size_t len = kFrameHeaderSize; len < wire.size(); ++len) {
    try {
      dls::serve::decode_frame(std::span(wire.data(), len));
      FAIL() << "frame prefix of " << len << " bytes accepted";
    } catch (const FrameTruncationError& e) {
      EXPECT_FALSE(e.peer_closed()) << "prefix " << len;
      EXPECT_EQ(e.announced(), wire.size() - kFrameHeaderSize);
      EXPECT_EQ(e.received(), len - kFrameHeaderSize);
    }
  }
}

TEST(FrameTest, EveryStreamPrefixReportsTypedTruncation) {
  // Like EveryTruncationPrefixIsRejected but across a live stream that
  // hangs up after each prefix: a clean close at offset 0 is EOF, a
  // close anywhere inside the frame is FrameTruncationError with
  // peer_closed() true, and the full frame round-trips.
  const Bytes wire = dls::serve::encode_frame(
      Frame{FrameType::kScheduleRequest, bytes_of({9, 8, 7})});
  for (std::size_t len = 0; len <= wire.size(); ++len) {
    Pipe pipe = make_pipe();
    pipe.a.write(std::span(wire.data(), len));
    pipe.a.close();
    if (len == 0) {
      EXPECT_FALSE(dls::serve::read_frame(pipe.b).has_value());
      continue;
    }
    if (len == wire.size()) {
      EXPECT_TRUE(dls::serve::read_frame(pipe.b).has_value());
      continue;
    }
    try {
      dls::serve::read_frame(pipe.b);
      FAIL() << "stream prefix of " << len << " bytes accepted";
    } catch (const FrameTruncationError& e) {
      EXPECT_TRUE(e.peer_closed()) << "prefix " << len;
      if (len < kFrameHeaderSize) {
        EXPECT_EQ(e.announced(), kFrameHeaderSize);
        EXPECT_EQ(e.received(), len);
      } else {
        EXPECT_EQ(e.announced(), wire.size() - kFrameHeaderSize);
        EXPECT_EQ(e.received(), len - kFrameHeaderSize);
      }
    }
  }
}

TEST(FrameTest, TrailingBytesAreRejected) {
  Bytes wire = dls::serve::encode_frame(
      Frame{FrameType::kScheduleRequest, bytes_of({1})});
  wire.push_back(0x00);
  EXPECT_THROW(dls::serve::decode_frame(wire), DecodeError);
}

TEST(FrameTest, BadMagicVersionTypeAndLengthAreRejected) {
  const Bytes good = dls::serve::encode_frame(
      Frame{FrameType::kScheduleRequest, bytes_of({1, 2})});

  Bytes bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(dls::serve::decode_frame(bad_magic), DecodeError);

  Bytes bad_version = good;
  bad_version[4] = 0x7F;
  EXPECT_THROW(dls::serve::decode_frame(bad_version), DecodeError);

  Bytes bad_type = good;
  bad_type[5] = 0;  // below the FrameType range
  EXPECT_THROW(dls::serve::decode_frame(bad_type), DecodeError);
  bad_type[5] = 200;  // above it
  EXPECT_THROW(dls::serve::decode_frame(bad_type), DecodeError);

  Bytes bad_length = good;
  bad_length[9] = 0xFF;  // announces a payload far beyond the cap
  EXPECT_THROW(dls::serve::decode_frame(bad_length), DecodeError);
}

TEST(FrameTest, VersionMismatchCarriesThePeersVersion) {
  const Bytes good = dls::serve::encode_frame(
      Frame{FrameType::kScheduleRequest, bytes_of({1, 2})});
  // v1/v2 peers during a rollout, plus a from-the-future version: the
  // typed error must report exactly what the peer announced.
  for (const std::uint8_t version : {0x00, 0x01, 0x02, 0x7F}) {
    Bytes bad_version = good;
    bad_version[4] = version;
    try {
      dls::serve::decode_frame(bad_version);
      FAIL() << "version " << int(version) << " accepted";
    } catch (const FrameVersionError& e) {
      EXPECT_EQ(e.received(), version);
      EXPECT_EQ(e.supported(), dls::serve::kFrameVersion);
    }
  }
}

TEST(FrameTest, VersionMismatchIsTypedAcrossAPipeToo) {
  Pipe pipe = make_pipe();
  Bytes wire = dls::serve::encode_frame(
      Frame{FrameType::kScheduleRequest, bytes_of({1})});
  wire[4] = 0x02;  // a v2 peer
  pipe.a.write(wire);
  try {
    dls::serve::read_frame(pipe.b);
    FAIL() << "v2 frame accepted";
  } catch (const FrameVersionError& e) {
    EXPECT_EQ(e.received(), 0x02);
    EXPECT_EQ(e.supported(), dls::serve::kFrameVersion);
  }
}

TEST(FrameTest, RoundTripsAcrossPipe) {
  Pipe pipe = make_pipe();
  const Frame sent{FrameType::kReport, bytes_of({10, 20, 30})};
  dls::serve::write_frame(pipe.a, sent);
  const std::optional<Frame> got = dls::serve::read_frame(pipe.b);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, sent.type);
  EXPECT_EQ(got->payload, sent.payload);
}

TEST(FrameTest, CleanEofBetweenFramesIsNullopt) {
  Pipe pipe = make_pipe();
  dls::serve::write_frame(pipe.a, Frame{FrameType::kBid, bytes_of({1})});
  pipe.a.close();
  EXPECT_TRUE(dls::serve::read_frame(pipe.b).has_value());
  EXPECT_FALSE(dls::serve::read_frame(pipe.b).has_value());
}

TEST(FrameTest, EofInsideFrameIsPeerClosedTruncation) {
  Pipe pipe = make_pipe();
  const Bytes wire = dls::serve::encode_frame(
      Frame{FrameType::kBid, bytes_of({1, 2, 3, 4})});
  // Send the header plus part of the payload, then hang up: a torn
  // frame, reported as peer-closed truncation (not a decode-side
  // corrupted length, and no longer an untyped TransportError).
  pipe.a.write(std::span(wire.data(), kFrameHeaderSize + 2));
  pipe.a.close();
  try {
    dls::serve::read_frame(pipe.b);
    FAIL() << "torn frame accepted";
  } catch (const FrameTruncationError& e) {
    EXPECT_TRUE(e.peer_closed());
    EXPECT_EQ(e.announced(), 4u);
    EXPECT_EQ(e.received(), 2u);
  }
}

TEST(FrameTest, ReadFrameTimesOutOnSilentPeer) {
  Pipe pipe = make_pipe();
  EXPECT_THROW(dls::serve::read_frame(pipe.b, /*timeout_s=*/0.01),
               TransportTimeout);
  // The timeout consumed nothing: a frame sent afterwards still reads.
  dls::serve::write_frame(pipe.a, Frame{FrameType::kBid, bytes_of({1})});
  const auto got = dls::serve::read_frame(pipe.b, /*timeout_s=*/1.0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, bytes_of({1}));
}

TEST(PipeTest, ReadPartialTimeoutConsumesNothing) {
  Pipe pipe = make_pipe();
  pipe.a.write(bytes_of({1, 2, 3}));
  Bytes want(5);
  const ReadOutcome timed = pipe.b.read_partial(want, 0.01);
  EXPECT_EQ(timed.received, 0u);
  EXPECT_FALSE(timed.complete);
  EXPECT_FALSE(timed.closed);
  pipe.a.write(bytes_of({4, 5}));
  const ReadOutcome full = pipe.b.read_partial(want, 1.0);
  EXPECT_TRUE(full.complete);
  EXPECT_EQ(want, bytes_of({1, 2, 3, 4, 5}));
}

TEST(PipeTest, ReadPartialDrainsBufferedBytesOnClose) {
  Pipe pipe = make_pipe();
  pipe.a.write(bytes_of({7, 8}));
  pipe.a.close();
  Bytes want(4);
  const ReadOutcome got = pipe.b.read_partial(want, 0.0);
  EXPECT_TRUE(got.closed);
  EXPECT_FALSE(got.complete);
  EXPECT_EQ(got.received, 2u);
  EXPECT_EQ(want[0], 7);
  EXPECT_EQ(want[1], 8);
}

TEST(FrameTest, ResyncSkipsGarbageToNextFrameBoundary) {
  Pipe pipe = make_pipe();
  const Bytes garbage = bytes_of({0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01, 0x02});
  const Frame sent{FrameType::kReport, bytes_of({5, 6, 7})};
  pipe.a.write(garbage);
  dls::serve::write_frame(pipe.a, sent);
  std::size_t skipped = 0;
  const auto got =
      dls::serve::read_frame_resync(pipe.b, /*max_scan_bytes=*/1024,
                                    &skipped);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, sent.type);
  EXPECT_EQ(got->payload, sent.payload);
  EXPECT_EQ(skipped, garbage.size());
  // A well-formed stream afterwards resyncs nothing.
  dls::serve::write_frame(pipe.a, sent);
  const auto clean =
      dls::serve::read_frame_resync(pipe.b, 1024, &skipped);
  ASSERT_TRUE(clean.has_value());
  EXPECT_EQ(skipped, 0u);
}

TEST(FrameTest, ResyncGivesUpPastScanBudget) {
  Pipe pipe = make_pipe();
  Bytes garbage(64, 0xAB);
  pipe.a.write(garbage);
  dls::serve::write_frame(pipe.a,
                          Frame{FrameType::kBid, bytes_of({1})});
  EXPECT_THROW(
      dls::serve::read_frame_resync(pipe.b, /*max_scan_bytes=*/16),
      DecodeError);
}

TEST(FrameTest, ResyncReportsEofWhileHunting) {
  Pipe pipe = make_pipe();
  // Enough garbage to fill a whole header window, then EOF mid-hunt.
  pipe.a.write(Bytes(kFrameHeaderSize + 4, 0x0C));
  pipe.a.close();
  EXPECT_THROW(dls::serve::read_frame_resync(pipe.b, 1024), DecodeError);
}

TEST(FrameTest, CorruptedPayloadIsChecksumMismatch) {
  using dls::serve::FrameChecksumError;
  Bytes wire = dls::serve::encode_frame(
      Frame{FrameType::kScheduleRequest, bytes_of({1, 2, 3, 4})});
  wire[kFrameHeaderSize + 2] ^= 0x10;  // flip one payload bit
  try {
    dls::serve::decode_frame(wire);
    FAIL() << "corrupted payload accepted";
  } catch (const FrameChecksumError& e) {
    EXPECT_NE(e.announced(), e.computed());
  }
}

TEST(FrameTest, CorruptedChecksumFieldIsChecksumMismatch) {
  using dls::serve::FrameChecksumError;
  Bytes wire = dls::serve::encode_frame(
      Frame{FrameType::kScheduleRequest, bytes_of({1, 2, 3, 4})});
  wire[kFrameHeaderSize - 1] ^= 0x01;  // flip a bit of the checksum itself
  EXPECT_THROW(dls::serve::decode_frame(wire), FrameChecksumError);
}

TEST(FrameTest, ChecksumMismatchLeavesStreamFrameAligned) {
  // The announced length is fully consumed before the checksum verdict,
  // so a server can skip the poison frame and keep reading.
  using dls::serve::FrameChecksumError;
  Pipe pipe = make_pipe();
  Bytes corrupt = dls::serve::encode_frame(
      Frame{FrameType::kBid, bytes_of({1, 2, 3})});
  corrupt[kFrameHeaderSize] ^= 0x80;
  pipe.a.write(corrupt);
  const Frame good{FrameType::kReport, bytes_of({4, 5, 6})};
  dls::serve::write_frame(pipe.a, good);
  EXPECT_THROW(dls::serve::read_frame(pipe.b), FrameChecksumError);
  const auto got = dls::serve::read_frame(pipe.b);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, good.type);
  EXPECT_EQ(got->payload, good.payload);
}

TEST(FrameTest, MalformedHeaderOnStreamIsDecodeError) {
  Pipe pipe = make_pipe();
  Bytes wire = dls::serve::encode_frame(
      Frame{FrameType::kBid, bytes_of({1})});
  wire[0] ^= 0xFF;  // corrupt the magic
  pipe.a.write(wire);
  EXPECT_THROW(dls::serve::read_frame(pipe.b), DecodeError);
}

}  // namespace
