// Round-trip property tests for every wire message in protocol/wire.hpp:
// encode → decode is the identity for random well-formed messages, and
// no truncated, extended or corrupted buffer is ever accepted silently —
// decoding either throws codec::DecodeError or (for payload-byte flips
// that keep the framing intact) yields a message that fails signature
// verification. Nothing may crash or invoke UB.
#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <vector>

#include "codec/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/pki.hpp"
#include "crypto/signed_claim.hpp"
#include "protocol/messages.hpp"
#include "protocol/wire.hpp"

namespace {

using dls::codec::Bytes;
using dls::codec::DecodeError;
using dls::common::Rng;
using dls::crypto::Claim;
using dls::crypto::ClaimKind;
using dls::crypto::KeyRegistry;
using dls::crypto::SignedClaim;
using dls::protocol::AllocationMessage;
using dls::protocol::BidMessage;
using dls::protocol::PaymentMessage;
using dls::protocol::ReportMessage;

constexpr ClaimKind kAllKinds[] = {
    ClaimKind::kEquivalentBid, ClaimKind::kReceivedLoad,
    ClaimKind::kBidRate, ClaimKind::kMeteredRate,
    ClaimKind::kLoadTokenCount};

struct Fixture {
  KeyRegistry registry;
  std::vector<dls::crypto::Signer> signers;
  Rng rng{20260806};

  Fixture() {
    for (std::uint32_t i = 0; i < 4; ++i) {
      signers.push_back(registry.enroll(i, rng));
    }
  }

  SignedClaim random_claim() {
    Claim claim;
    claim.kind = kAllKinds[static_cast<std::size_t>(
        rng.uniform_int(0, std::ssize(kAllKinds) - 1))];
    claim.subject =
        static_cast<dls::crypto::AgentId>(rng.uniform_int(0, 3));
    claim.round = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
    claim.value = rng.uniform(-10.0, 10.0);
    const std::size_t who =
        static_cast<std::size_t>(rng.uniform_int(0, 3));
    return dls::crypto::make_signed(signers[who], claim);
  }

  AllocationMessage random_allocation() {
    AllocationMessage g;
    g.received_pred = random_claim();
    g.received_self = random_claim();
    g.equiv_bid_pred = random_claim();
    g.rate_bid_pred = random_claim();
    g.equiv_bid_self = random_claim();
    return g;
  }

  ReportMessage random_report() {
    ReportMessage r;
    r.metered_rate = random_claim();
    r.token_count = random_claim();
    return r;
  }

  PaymentMessage random_payment() {
    PaymentMessage p;
    p.processor = static_cast<std::uint32_t>(rng.uniform_int(0, 64));
    p.round = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 20));
    p.compensation = rng.uniform(0.0, 10.0);
    p.bonus = rng.uniform(0.0, 5.0);
    p.solution_bonus = rng.uniform(0.0, 1.0);
    p.payment = p.compensation + p.bonus + p.solution_bonus;
    p.metered_rate = random_claim();
    return p;
  }
};

/// Decode attempts must end in exactly two ways: DecodeError, or a
/// decoded value (possibly garbage that then fails verification). Any
/// other exception type — or a crash — is a bug.
template <typename DecodeFn>
bool decodes_cleanly(DecodeFn&& decode, std::span<const std::uint8_t> data) {
  try {
    decode(data);
    return true;
  } catch (const DecodeError&) {
    return false;
  }
}

TEST(WireRoundTrip, SignedClaimIdentityAcrossAllKinds) {
  Fixture fx;
  for (int iter = 0; iter < 200; ++iter) {
    const SignedClaim original = fx.random_claim();
    const Bytes wire = dls::protocol::encode_signed_claim(original);
    const SignedClaim decoded = dls::protocol::decode_signed_claim(wire);
    EXPECT_EQ(decoded, original);
    // The signature survives the trip bit-for-bit.
    EXPECT_TRUE(dls::crypto::verify(fx.registry, decoded));
  }
}

TEST(WireRoundTrip, BidMessageIdentity) {
  Fixture fx;
  for (int iter = 0; iter < 100; ++iter) {
    const BidMessage original{fx.random_claim()};
    const BidMessage decoded =
        dls::protocol::decode_bid_message(
            dls::protocol::encode_bid_message(original));
    EXPECT_EQ(decoded.equivalent_bid, original.equivalent_bid);
  }
}

TEST(WireRoundTrip, AllocationMessageIdentity) {
  Fixture fx;
  for (int iter = 0; iter < 50; ++iter) {
    const AllocationMessage original = fx.random_allocation();
    const AllocationMessage decoded =
        dls::protocol::decode_allocation_message(
            dls::protocol::encode_allocation_message(original));
    EXPECT_EQ(decoded.received_pred, original.received_pred);
    EXPECT_EQ(decoded.received_self, original.received_self);
    EXPECT_EQ(decoded.equiv_bid_pred, original.equiv_bid_pred);
    EXPECT_EQ(decoded.rate_bid_pred, original.rate_bid_pred);
    EXPECT_EQ(decoded.equiv_bid_self, original.equiv_bid_self);
  }
}

TEST(WireRoundTrip, ReportMessageIdentity) {
  Fixture fx;
  for (int iter = 0; iter < 100; ++iter) {
    const ReportMessage original = fx.random_report();
    const ReportMessage decoded = dls::protocol::decode_report_message(
        dls::protocol::encode_report_message(original));
    EXPECT_EQ(decoded.metered_rate, original.metered_rate);
    EXPECT_EQ(decoded.token_count, original.token_count);
    // Both embedded claims stay verifiable after the trip.
    EXPECT_TRUE(dls::crypto::verify(fx.registry, decoded.metered_rate));
    EXPECT_TRUE(dls::crypto::verify(fx.registry, decoded.token_count));
  }
}

TEST(WireRoundTrip, PaymentMessageIdentity) {
  Fixture fx;
  for (int iter = 0; iter < 100; ++iter) {
    const PaymentMessage original = fx.random_payment();
    const PaymentMessage decoded = dls::protocol::decode_payment_message(
        dls::protocol::encode_payment_message(original));
    EXPECT_EQ(decoded.processor, original.processor);
    EXPECT_EQ(decoded.round, original.round);
    // Bit-exact doubles: the wire carries IEEE-754 bit patterns.
    EXPECT_EQ(decoded.compensation, original.compensation);
    EXPECT_EQ(decoded.bonus, original.bonus);
    EXPECT_EQ(decoded.solution_bonus, original.solution_bonus);
    EXPECT_EQ(decoded.payment, original.payment);
    EXPECT_EQ(decoded.metered_rate, original.metered_rate);
    EXPECT_TRUE(dls::crypto::verify(fx.registry, decoded.metered_rate));
  }
}

TEST(WireRoundTrip, EveryTruncationPrefixIsRejected) {
  Fixture fx;
  const Bytes claim_wire = dls::protocol::encode_signed_claim(
      fx.random_claim());
  const Bytes bid_wire = dls::protocol::encode_bid_message(
      BidMessage{fx.random_claim()});
  const Bytes alloc_wire = dls::protocol::encode_allocation_message(
      fx.random_allocation());

  for (std::size_t len = 0; len < claim_wire.size(); ++len) {
    EXPECT_THROW(dls::protocol::decode_signed_claim(
                     std::span(claim_wire.data(), len)),
                 DecodeError)
        << "claim prefix of " << len << " bytes accepted";
  }
  for (std::size_t len = 0; len < bid_wire.size(); ++len) {
    EXPECT_THROW(
        dls::protocol::decode_bid_message(std::span(bid_wire.data(), len)),
        DecodeError)
        << "bid prefix of " << len << " bytes accepted";
  }
  for (std::size_t len = 0; len < alloc_wire.size(); ++len) {
    EXPECT_THROW(dls::protocol::decode_allocation_message(
                     std::span(alloc_wire.data(), len)),
                 DecodeError)
        << "allocation prefix of " << len << " bytes accepted";
  }

  const Bytes report_wire =
      dls::protocol::encode_report_message(fx.random_report());
  for (std::size_t len = 0; len < report_wire.size(); ++len) {
    EXPECT_THROW(dls::protocol::decode_report_message(
                     std::span(report_wire.data(), len)),
                 DecodeError)
        << "report prefix of " << len << " bytes accepted";
  }
  const Bytes payment_wire =
      dls::protocol::encode_payment_message(fx.random_payment());
  for (std::size_t len = 0; len < payment_wire.size(); ++len) {
    EXPECT_THROW(dls::protocol::decode_payment_message(
                     std::span(payment_wire.data(), len)),
                 DecodeError)
        << "payment prefix of " << len << " bytes accepted";
  }
}

TEST(WireRoundTrip, TrailingBytesAreRejected) {
  Fixture fx;
  Bytes wire = dls::protocol::encode_signed_claim(fx.random_claim());
  wire.push_back(0x00);
  EXPECT_THROW(dls::protocol::decode_signed_claim(wire), DecodeError);

  Bytes bid = dls::protocol::encode_bid_message(
      BidMessage{fx.random_claim()});
  bid.push_back(0xff);
  EXPECT_THROW(dls::protocol::decode_bid_message(bid), DecodeError);

  Bytes alloc = dls::protocol::encode_allocation_message(
      fx.random_allocation());
  alloc.push_back(0x42);
  EXPECT_THROW(dls::protocol::decode_allocation_message(alloc), DecodeError);

  Bytes report = dls::protocol::encode_report_message(fx.random_report());
  report.push_back(0x01);
  EXPECT_THROW(dls::protocol::decode_report_message(report), DecodeError);

  Bytes payment = dls::protocol::encode_payment_message(fx.random_payment());
  payment.push_back(0x7f);
  EXPECT_THROW(dls::protocol::decode_payment_message(payment), DecodeError);
}

TEST(WireRoundTrip, WrongMagicIsRejected) {
  Fixture fx;
  const Bytes claim_wire =
      dls::protocol::encode_signed_claim(fx.random_claim());
  // A claim frame is not a bid frame and vice versa.
  EXPECT_THROW(dls::protocol::decode_bid_message(claim_wire), DecodeError);
  EXPECT_THROW(dls::protocol::decode_allocation_message(claim_wire),
               DecodeError);
  const Bytes bid_wire = dls::protocol::encode_bid_message(
      BidMessage{fx.random_claim()});
  EXPECT_THROW(dls::protocol::decode_signed_claim(bid_wire), DecodeError);
  // Phase III/IV frames are equally picky about each other's magic.
  const Bytes report_wire =
      dls::protocol::encode_report_message(fx.random_report());
  EXPECT_THROW(dls::protocol::decode_payment_message(report_wire),
               DecodeError);
  const Bytes payment_wire =
      dls::protocol::encode_payment_message(fx.random_payment());
  EXPECT_THROW(dls::protocol::decode_report_message(payment_wire),
               DecodeError);
  EXPECT_THROW(dls::protocol::decode_bid_message(report_wire), DecodeError);
}

TEST(WireRoundTrip, SingleByteCorruptionNeverAcceptedAsAuthentic) {
  Fixture fx;
  const SignedClaim original = fx.random_claim();
  const Bytes wire = dls::protocol::encode_signed_claim(original);

  std::size_t decoded_ok = 0, rejected = 0, unverifiable = 0;
  for (std::size_t pos = 0; pos < wire.size(); ++pos) {
    for (const std::uint8_t delta : {std::uint8_t{0x01}, std::uint8_t{0x80}}) {
      Bytes corrupt = wire;
      corrupt[pos] = static_cast<std::uint8_t>(corrupt[pos] ^ delta);
      try {
        const SignedClaim decoded =
            dls::protocol::decode_signed_claim(corrupt);
        ++decoded_ok;
        // Framing survived; the flip must land in claim, signer or tag —
        // all covered by the signature check.
        if (decoded == original) {
          ADD_FAILURE() << "flip at byte " << pos
                        << " produced an identical message";
        } else if (!dls::crypto::verify(fx.registry, decoded)) {
          ++unverifiable;
        }
      } catch (const DecodeError&) {
        ++rejected;
      }
    }
  }
  // Every flip was handled through one of the two sanctioned exits.
  EXPECT_EQ(decoded_ok + rejected, wire.size() * 2);
  // And whatever decoded was never a verifiable forgery.
  EXPECT_EQ(unverifiable, decoded_ok);
}

TEST(WireRoundTrip, RandomGarbageNeverCrashes) {
  Fixture fx;
  Rng rng(0xC0FFEEu);
  for (int iter = 0; iter < 500; ++iter) {
    const std::size_t len =
        static_cast<std::size_t>(rng.uniform_int(0, 256));
    Bytes garbage(len);
    for (auto& b : garbage) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    decodes_cleanly(
        [](std::span<const std::uint8_t> d) {
          return dls::protocol::decode_signed_claim(d);
        },
        garbage);
    decodes_cleanly(
        [](std::span<const std::uint8_t> d) {
          return dls::protocol::decode_bid_message(d);
        },
        garbage);
    decodes_cleanly(
        [](std::span<const std::uint8_t> d) {
          return dls::protocol::decode_allocation_message(d);
        },
        garbage);
    decodes_cleanly(
        [](std::span<const std::uint8_t> d) {
          return dls::protocol::decode_report_message(d);
        },
        garbage);
    decodes_cleanly(
        [](std::span<const std::uint8_t> d) {
          return dls::protocol::decode_payment_message(d);
        },
        garbage);
  }
}

}  // namespace
