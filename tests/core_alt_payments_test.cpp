// Tests for the alternative payment rules used in the shootout bench —
// they must be broken in exactly the documented ways.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/alt_payments.hpp"
#include "core/dls_lbl.hpp"
#include "dlt/linear.hpp"
#include "net/networks.hpp"

namespace {

using dls::common::Rng;
using dls::core::cost_plus_utility_under_bid;
using dls::core::makespan_without;
using dls::core::paper_vcg_utility_under_bid;
using dls::net::LinearNetwork;

TEST(MakespanWithout, RelayingAProcessorSlowsTheChain) {
  const LinearNetwork net({1.0, 1.2, 0.8, 1.5}, {0.2, 0.15, 0.25});
  const double full = dls::dlt::solve_linear_boundary(net).makespan;
  for (std::size_t i = 1; i < net.size(); ++i) {
    EXPECT_GT(makespan_without(net, i), full) << "P" << i;
  }
}

TEST(PaperVcg, TruthfulUtilityIsTheMarginalContribution) {
  const LinearNetwork net({1.0, 1.2, 0.8}, {0.2, 0.2});
  const double t = net.w(1);
  const double u = paper_vcg_utility_under_bid(net, 1, t, t);
  const double expected = makespan_without(net, 1) -
                          dls::dlt::solve_linear_boundary(net).makespan;
  EXPECT_NEAR(u, expected, 1e-12);
  EXPECT_GT(u, 0.0);
}

TEST(PaperVcg, UnderbiddingStrictlyBeatsTruth) {
  // The documented defect: claiming to be faster raises the on-paper
  // marginal contribution, and the rule never consults the meter.
  Rng rng(77);
  for (int rep = 0; rep < 10; ++rep) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(2, 8));
    const LinearNetwork net =
        LinearNetwork::random(m + 1, rng, 0.5, 5.0, 0.05, 0.5);
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(m)));
    const double t = net.w(i);
    const double truth = paper_vcg_utility_under_bid(net, i, t, t);
    const double lie = paper_vcg_utility_under_bid(net, i, t * 0.3, t);
    EXPECT_GT(lie, truth) << "P" << i << " of " << net.describe();
  }
}

TEST(PaperVcg, ContrastWithDlsLbl) {
  // On the same instance, DLS-LBL punishes the same underbid.
  const LinearNetwork net({1.0, 1.2, 0.8}, {0.2, 0.2});
  const double t = net.w(2);
  const dls::core::MechanismConfig config;
  EXPECT_GT(paper_vcg_utility_under_bid(net, 2, t * 0.3, t),
            paper_vcg_utility_under_bid(net, 2, t, t));
  EXPECT_LT(dls::core::utility_under_bid(net, 2, t * 0.3, t, config),
            dls::core::utility_under_bid(net, 2, t, t, config));
}

TEST(CostPlus, UtilityIsTheFeeNoMatterWhat) {
  const LinearNetwork net({1.0, 1.2, 0.8}, {0.2, 0.2});
  for (const double bid_f : {0.3, 1.0, 2.5}) {
    for (const double run_f : {1.0, 1.7}) {
      EXPECT_DOUBLE_EQ(
          cost_plus_utility_under_bid(net, 1, 1.2 * bid_f, 1.2 * run_f, 0.4),
          0.4);
    }
  }
}

TEST(AltPayments, ValidateArguments) {
  const LinearNetwork net({1.0, 1.2}, {0.2});
  EXPECT_THROW(paper_vcg_utility_under_bid(net, 0, 1.0, 1.0),
               dls::PreconditionError);
  EXPECT_THROW(paper_vcg_utility_under_bid(net, 1, -1.0, 1.2),
               dls::PreconditionError);
  EXPECT_THROW(cost_plus_utility_under_bid(net, 1, 1.0, 0.5, 0.1),
               dls::PreconditionError);
}

}  // namespace
