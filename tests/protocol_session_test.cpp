// Tests for multi-round sessions with the reputation/exclusion policy.
#include <gtest/gtest.h>

#include "agents/agent.hpp"
#include "common/error.hpp"
#include "net/networks.hpp"
#include "protocol/session.hpp"

namespace {

using dls::agents::Behavior;
using dls::agents::Population;
using dls::agents::StrategicAgent;
using dls::net::LinearNetwork;
using dls::protocol::run_session;
using dls::protocol::SessionOptions;
using dls::protocol::SessionReport;

LinearNetwork test_network() {
  return LinearNetwork({1.0, 1.2, 0.8, 1.5}, {0.2, 0.15, 0.25});
}

Population population_with(std::size_t index, const Behavior& behavior) {
  std::vector<StrategicAgent> agents = {
      StrategicAgent{1, 1.2, Behavior::truthful()},
      StrategicAgent{2, 0.8, Behavior::truthful()},
      StrategicAgent{3, 1.5, Behavior::truthful()}};
  if (index >= 1) agents[index - 1].behavior = behavior;
  return Population(std::move(agents));
}

TEST(Session, HonestSessionAccumulatesSteadyProfit) {
  SessionOptions options;
  options.rounds = 5;
  const SessionReport session =
      run_session(test_network(), population_with(0, {}), options);
  ASSERT_EQ(session.rounds.size(), 5u);
  for (std::size_t i = 1; i <= 3; ++i) {
    EXPECT_FALSE(session.is_excluded(i));
    EXPECT_EQ(session.strikes[i], 0u);
    // Wealth is 5x one round's utility (rounds are identical).
    EXPECT_NEAR(session.wealth[i],
                5.0 * session.rounds[0].processors[i].utility, 1e-9);
  }
}

TEST(Session, RepeatOffenderGetsExcluded) {
  SessionOptions options;
  options.rounds = 6;
  options.strikes_to_exclude = 2;
  const SessionReport session = run_session(
      test_network(), population_with(1, Behavior::load_shedder(0.5)),
      options);
  EXPECT_TRUE(session.is_excluded(1));
  EXPECT_EQ(session.excluded_at[1], 2u);  // second strike, second round
  EXPECT_GE(session.strikes[1], 2u);
  // After exclusion its per-round utility is ~0 (no assignment, no
  // fines): wealth stops falling.
  const double after_exclusion =
      session.rounds.back().processors[1].utility;
  EXPECT_NEAR(after_exclusion, 0.0, 1e-6);
  // And no further incidents occur in the excluded rounds.
  EXPECT_TRUE(session.rounds.back().incidents.empty());
}

TEST(Session, ExclusionReassignsItsLoadToOthers) {
  SessionOptions options;
  options.rounds = 4;
  options.strikes_to_exclude = 1;
  const SessionReport session = run_session(
      test_network(), population_with(2, Behavior::load_shedder(0.5)),
      options);
  ASSERT_TRUE(session.is_excluded(2));
  const auto& first = session.rounds.front();
  const auto& last = session.rounds.back();
  EXPECT_LT(last.processors[2].assigned, 1e-3);
  EXPECT_GT(last.processors[1].assigned, first.processors[1].assigned);
  // The whole load still gets computed.
  double total = 0.0;
  for (const auto& p : last.processors) total += p.computed;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Session, ZeroStrikesDisablesThePolicy) {
  SessionOptions options;
  options.rounds = 4;
  options.strikes_to_exclude = 0;
  const SessionReport session = run_session(
      test_network(), population_with(1, Behavior::load_shedder(0.5)),
      options);
  EXPECT_FALSE(session.is_excluded(1));
  EXPECT_GE(session.strikes[1], 4u);  // fined every round instead
  EXPECT_LT(session.wealth[1], -100.0);
}

TEST(Session, ValidatesInputs) {
  SessionOptions options;
  options.rounds = 0;
  EXPECT_THROW(run_session(test_network(), population_with(0, {}), options),
               dls::PreconditionError);
}

}  // namespace
