// Tests for the tree protocol runner and the deviant-capable tree
// executor.
#include <gtest/gtest.h>

#include "agents/agent.hpp"
#include "common/error.hpp"
#include "core/dls_tree.hpp"
#include "dlt/tree.hpp"
#include "net/tree.hpp"
#include "protocol/tree_runner.hpp"
#include "sim/tree_execution.hpp"

namespace {

using dls::agents::Behavior;
using dls::agents::Population;
using dls::agents::StrategicAgent;
using dls::net::TreeNetwork;
using dls::protocol::Incident;
using dls::protocol::ProtocolOptions;
using dls::protocol::run_tree_protocol;
using dls::protocol::TreeRunReport;

// Shape: 0 -> {1, 2}; 1 -> {3, 4}
TreeNetwork test_tree() {
  return TreeNetwork({1.0, 1.2, 0.8, 1.5, 0.9},
                     {1.0, 0.2, 0.15, 0.25, 0.1}, {0, 0, 0, 1, 1});
}

Population with_behavior(std::size_t index, Behavior behavior) {
  std::vector<StrategicAgent> agents = {
      StrategicAgent{1, 1.2, Behavior::truthful()},
      StrategicAgent{2, 0.8, Behavior::truthful()},
      StrategicAgent{3, 1.5, Behavior::truthful()},
      StrategicAgent{4, 0.9, Behavior::truthful()}};
  if (index >= 1) agents[index - 1].behavior = std::move(behavior);
  return Population(std::move(agents));
}

TreeRunReport run(const Population& pop, ProtocolOptions options = {}) {
  return run_tree_protocol(test_tree(), pop, options);
}

TEST(ExecuteTree, CompliantRunMatchesSolver) {
  const TreeNetwork tree = test_tree();
  const auto sol = dls::dlt::solve_tree(tree);
  const auto result = dls::sim::execute_tree(
      tree, sol, dls::sim::TreeExecutionPlan::compliant(tree));
  const auto closed = dls::dlt::tree_finish_times(tree, sol);
  for (std::size_t v = 0; v < tree.size(); ++v) {
    EXPECT_NEAR(result.finish_time[v], closed[v], 1e-9) << "node " << v;
    EXPECT_NEAR(result.computed[v], sol.alpha[v], 1e-12);
    EXPECT_NEAR(result.received[v], sol.received[v], 1e-12);
  }
  EXPECT_NEAR(result.makespan, sol.makespan, 1e-9);
  EXPECT_TRUE(result.trace.check_one_port().empty());
}

TEST(ExecuteTree, SheddingOverloadsTheChildren) {
  const TreeNetwork tree = test_tree();
  const auto sol = dls::dlt::solve_tree(tree);
  auto plan = dls::sim::TreeExecutionPlan::compliant(tree);
  plan.keep_multiplier[1] = 0.5;  // node 1 sheds half its keep
  const auto result = dls::sim::execute_tree(tree, sol, plan);
  EXPECT_LT(result.computed[1], sol.alpha[1]);
  EXPECT_GT(result.received[3], sol.received[3] + 1e-12);
  EXPECT_GT(result.received[4], sol.received[4] + 1e-12);
  double total = 0.0;
  for (const double c : result.computed) total += c;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(TreeProtocol, HonestRoundMatchesCentralAssessment) {
  const TreeRunReport report = run(with_behavior(0, {}));
  EXPECT_FALSE(report.aborted);
  EXPECT_TRUE(report.incidents.empty());
  const TreeNetwork tree = test_tree();
  std::vector<double> rates(tree.size());
  for (std::size_t v = 0; v < tree.size(); ++v) rates[v] = tree.w(v);
  const auto central = dls::core::assess_dls_tree(
      tree, rates, dls::core::MechanismConfig{});
  for (std::size_t v = 1; v < tree.size(); ++v) {
    EXPECT_NEAR(report.nodes[v].utility, central.nodes[v].utility, 1e-9)
        << "node " << v;
    EXPECT_GE(report.nodes[v].utility, 0.0);
  }
  EXPECT_DOUBLE_EQ(report.nodes[0].utility, 0.0);
  EXPECT_NEAR(report.ledger.conservation_residual(), 0.0, 1e-9);
}

TEST(TreeProtocol, ContradictorCaughtByItsParent) {
  const TreeRunReport report = run(with_behavior(3, Behavior::contradictor()));
  EXPECT_TRUE(report.aborted);
  ASSERT_EQ(report.incidents.size(), 1u);
  EXPECT_EQ(report.incidents[0].kind,
            Incident::Kind::kContradictoryMessages);
  EXPECT_EQ(report.incidents[0].accused, 3u);
  EXPECT_EQ(report.incidents[0].reporter, 1u);  // node 3's parent
  EXPECT_LT(report.nodes[3].utility, 0.0);
  EXPECT_GT(report.nodes[1].utility, 0.0);  // the reporting parent
}

TEST(TreeProtocol, MiscomputingParentReportedByChild) {
  const TreeRunReport report = run(with_behavior(1, Behavior::miscomputer()));
  EXPECT_TRUE(report.aborted);
  ASSERT_EQ(report.incidents.size(), 1u);
  EXPECT_EQ(report.incidents[0].kind, Incident::Kind::kMiscomputation);
  EXPECT_EQ(report.incidents[0].accused, 1u);
  EXPECT_LT(report.nodes[1].utility, 0.0);
}

TEST(TreeProtocol, SheddingParentFinedChildrenMadeWhole) {
  const TreeRunReport honest = run(with_behavior(0, {}));
  const TreeRunReport report =
      run(with_behavior(1, Behavior::load_shedder(0.5)));
  EXPECT_FALSE(report.aborted);
  ASSERT_FALSE(report.incidents.empty());
  EXPECT_EQ(report.incidents[0].kind, Incident::Kind::kLoadShedding);
  EXPECT_EQ(report.incidents[0].accused, 1u);
  EXPECT_LT(report.nodes[1].utility, honest.nodes[1].utility);
  EXPECT_LT(report.nodes[1].utility, 0.0);
  // The overloaded children are recompensed (>= honest, one gets +F).
  EXPECT_GE(report.nodes[3].utility, honest.nodes[3].utility - 1e-9);
  EXPECT_GE(report.nodes[4].utility, honest.nodes[4].utility - 1e-9);
}

TEST(TreeProtocol, SlowExecutionLowersUtilityWithoutFines) {
  const TreeRunReport honest = run(with_behavior(0, {}));
  const TreeRunReport report =
      run(with_behavior(2, Behavior::slow_execution(1.5)));
  EXPECT_FALSE(report.aborted);
  EXPECT_TRUE(report.incidents.empty());
  EXPECT_LT(report.nodes[2].utility, honest.nodes[2].utility);
  EXPECT_DOUBLE_EQ(report.nodes[2].fines, 0.0);
}

TEST(TreeProtocol, OverchargeAuditRuinous) {
  ProtocolOptions options;
  options.mechanism.audit_probability = 1.0;
  const TreeRunReport honest = run(with_behavior(0, {}), options);
  const TreeRunReport report =
      run(with_behavior(4, Behavior::overcharger(0.3)), options);
  ASSERT_EQ(report.incidents.size(), 1u);
  EXPECT_EQ(report.incidents[0].kind, Incident::Kind::kOvercharge);
  EXPECT_NEAR(report.nodes[4].payment, honest.nodes[4].payment, 1e-9);
  EXPECT_LT(report.nodes[4].utility, 0.0);
}

TEST(TreeProtocol, MisreportedBidsNeverBeatTruthEndToEnd) {
  const TreeRunReport honest = run(with_behavior(0, {}));
  for (const double f : {0.5, 0.8, 1.4, 2.2}) {
    const Behavior b =
        f < 1.0 ? Behavior::underbid(f) : Behavior::overbid(f);
    for (std::size_t v = 1; v <= 4; ++v) {
      const TreeRunReport report = run(with_behavior(v, b));
      EXPECT_LE(report.nodes[v].utility, honest.nodes[v].utility + 1e-9)
          << "node " << v << " factor " << f;
    }
  }
}

TEST(TreeProtocol, LedgerBalancesInEveryScenario) {
  const std::vector<Behavior> behaviors = {
      Behavior::truthful(),          Behavior::contradictor(),
      Behavior::miscomputer(),       Behavior::load_shedder(0.4),
      Behavior::overcharger(0.2),    Behavior::false_accuser(),
      Behavior::data_corruptor(),    Behavior::slow_execution(1.3)};
  ProtocolOptions options;
  options.mechanism.audit_probability = 1.0;
  for (const auto& b : behaviors) {
    const TreeRunReport report = run(with_behavior(1, b), options);
    EXPECT_NEAR(report.ledger.conservation_residual(), 0.0, 1e-9) << b.name;
  }
}

TEST(TreeProtocol, ChainShapedTreeMatchesChainProtocol) {
  // A unary tree and the chain protocol must agree on honest utilities.
  const dls::net::LinearNetwork chain({1.0, 1.2, 0.8}, {0.2, 0.15});
  const TreeNetwork tree = TreeNetwork::chain({1.0, 1.2, 0.8}, {0.2, 0.15});
  const Population pop({StrategicAgent{1, 1.2, Behavior::truthful()},
                        StrategicAgent{2, 0.8, Behavior::truthful()}});
  const auto chain_report = dls::protocol::run_protocol(chain, pop, {});
  const auto tree_report = run_tree_protocol(tree, pop, {});
  for (std::size_t v = 1; v < 3; ++v) {
    EXPECT_NEAR(tree_report.nodes[v].utility,
                chain_report.processors[v].utility, 1e-9)
        << "node " << v;
  }
}

}  // namespace
