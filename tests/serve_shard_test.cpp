// ShardMap + ShardRouter unit coverage: consistent-hash stability (a
// death moves only the dead shard's arc), replication owner walks,
// routed solves with warm inline hits, quorum divergence surfacing as
// a typed incident, backpressure merging, and heartbeat-budget death
// detection with monitor-probe revival.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "codec/bytes.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "serve/client.hpp"
#include "serve/frame.hpp"
#include "serve/pipe.hpp"
#include "serve/router.hpp"
#include "serve/service.hpp"
#include "serve/shard.hpp"

namespace {

using dls::codec::Bytes;
using dls::serve::Frame;
using dls::serve::FrameType;
using dls::serve::PipeEnd;
using dls::serve::RouterConfig;
using dls::serve::RouterStats;
using dls::serve::ScheduleOptions;
using dls::serve::ScheduleRequest;
using dls::serve::ScheduleResponse;
using dls::serve::ScheduleStatus;
using dls::serve::SchedulerClient;
using dls::serve::SchedulerService;
using dls::serve::ServiceConfig;
using dls::serve::ShardMap;
using dls::serve::ShardRouter;
using dls::serve::Transport;
using dls::serve::TransportError;

Bytes key_of(std::uint64_t i) {
  Bytes key(8);
  for (int b = 0; b < 8; ++b) {
    key[static_cast<std::size_t>(b)] =
        static_cast<std::uint8_t>(i >> (8 * b));
  }
  return key;
}

TEST(ShardMapTest, HashIsTheDocumentedFnv1a64) {
  EXPECT_EQ(dls::serve::shard_hash({}), 14695981039346656037ull);
  const Bytes a = {0x61};  // "a"
  EXPECT_EQ(dls::serve::shard_hash(a), 0xaf63dc4c8601ec8cull);
}

TEST(ShardMapTest, OwnersAreDistinctAliveAndDeterministic) {
  ShardMap map(5);
  for (std::uint64_t i = 0; i < 200; ++i) {
    const Bytes key = key_of(i);
    const auto owners = map.owners(key, 3);
    ASSERT_EQ(owners.size(), 3u);
    EXPECT_NE(owners[0], owners[1]);
    EXPECT_NE(owners[1], owners[2]);
    EXPECT_NE(owners[0], owners[2]);
    EXPECT_EQ(owners, map.owners(key, 3));  // deterministic
    EXPECT_EQ(owners[0], map.primary(key));
  }
  // Replication clamps to the alive population.
  EXPECT_EQ(map.owners(key_of(1), 99).size(), 5u);
}

TEST(ShardMapTest, DeathMovesOnlyTheDeadShardsArc) {
  ShardMap map(4);
  constexpr std::uint64_t kKeys = 2000;
  std::vector<std::size_t> before(kKeys);
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    before[i] = map.primary(key_of(i));
  }
  EXPECT_TRUE(map.set_alive(2, false));
  EXPECT_FALSE(map.set_alive(2, false));  // no edge: already dead
  std::size_t moved = 0;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    const std::size_t now = map.primary(key_of(i));
    EXPECT_NE(now, 2u);
    if (before[i] == 2) {
      ++moved;
    } else {
      // The consistent-hash guarantee: keys not owned by the dead
      // shard keep their primary exactly.
      EXPECT_EQ(now, before[i]) << "key " << i;
    }
  }
  EXPECT_GT(moved, 0u);
  // Revival restores the original assignment bit for bit.
  EXPECT_TRUE(map.set_alive(2, true));
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    EXPECT_EQ(map.primary(key_of(i)), before[i]);
  }
}

TEST(ShardMapTest, AllDeadMeansNoOwners) {
  ShardMap map(2);
  map.set_alive(0, false);
  map.set_alive(1, false);
  EXPECT_TRUE(map.owners(key_of(7), 2).empty());
  EXPECT_EQ(map.primary(key_of(7)), map.shard_count());
}

/// An in-process federation: N real shard services behind one router.
struct Federation {
  std::vector<std::unique_ptr<SchedulerService>> shards;
  std::unique_ptr<ShardRouter> router;

  explicit Federation(std::size_t n, RouterConfig config = RouterConfig{},
                      ServiceConfig shard_config = ServiceConfig{}) {
    for (std::size_t i = 0; i < n; ++i) {
      shards.push_back(std::make_unique<SchedulerService>(shard_config));
    }
    config.shard_count = n;
    auto* backing = &shards;
    config.connect = [backing](std::size_t shard) {
      return std::make_unique<PipeEnd>((*backing)[shard]->connect());
    };
    if (config.local.empty()) {
      for (auto& shard : shards) config.local.push_back(shard.get());
    }
    router = std::make_unique<ShardRouter>(config);
  }
  ~Federation() {
    router->stop();
    for (auto& shard : shards) shard->stop();
  }
};

TEST(ShardRouterTest, RoutesSolvesAndServesWarmHitsInline) {
  Federation fed(3);
  SchedulerClient client(fed.router->connect());
  const std::vector<double> w = {1.0, 1.2, 0.9, 1.1};
  const std::vector<double> z = {0.15, 0.1, 0.2};

  const auto cold = client.schedule(w, z);
  ASSERT_EQ(cold.status, ScheduleStatus::kOk);
  const auto warm = client.schedule(w, z);
  ASSERT_EQ(warm.status, ScheduleStatus::kOk);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(cold.alpha, warm.alpha);
  EXPECT_EQ(cold.makespan, warm.makespan);

  ScheduleOptions pay;
  pay.want_payments = true;
  const auto paid = client.schedule(w, z, pay);
  ASSERT_EQ(paid.status, ScheduleStatus::kOk);
  EXPECT_FALSE(paid.payments.empty());

  const RouterStats stats = fed.router->stats();
  EXPECT_EQ(stats.received, 3u);
  EXPECT_EQ(stats.answered_ok, 3u);
  EXPECT_EQ(stats.inline_hits, 1u);  // the warm payment-free hit
  // Exactly one shard saw the key; the others stayed cold.
  std::uint64_t shard_received = 0;
  for (const auto& shard : fed.shards) {
    shard_received += shard->stats().received;
  }
  EXPECT_EQ(shard_received, 2u);  // cold solve + payments; warm was inline
  client.close();
}

TEST(ShardRouterTest, ReplicationCrossChecksAndAgrees) {
  RouterConfig config;
  config.replication = 2;
  Federation fed(3, config);
  SchedulerClient client(fed.router->connect());
  const std::vector<double> w = {1.0, 0.8, 1.3};
  const std::vector<double> z = {0.2, 0.1};
  const auto answer = client.schedule(w, z);
  ASSERT_EQ(answer.status, ScheduleStatus::kOk);
  const RouterStats stats = fed.router->stats();
  EXPECT_EQ(stats.quorum_checked, 1u);
  EXPECT_EQ(stats.quorum_agreed, 1u);
  EXPECT_EQ(stats.quorum_divergence, 0u);
  EXPECT_EQ(stats.forwarded, 2u);
  client.close();
}

/// A scripted shard: answers every schedule request with a fixed kOk
/// solution (or any response the mutator builds), over a Pipe.
class FakeShard {
 public:
  using Responder = std::function<ScheduleResponse(const ScheduleRequest&)>;

  explicit FakeShard(Responder responder)
      : responder_(std::move(responder)) {}
  ~FakeShard() {
    for (auto& end : ends_) end->close();
    for (auto& thread : threads_) thread.join();
  }

  std::unique_ptr<Transport> connect() {
    dls::serve::Pipe pipe = dls::serve::make_pipe();
    auto server = std::make_unique<PipeEnd>(std::move(pipe.a));
    PipeEnd* raw = server.get();
    ends_.push_back(std::move(server));
    threads_.emplace_back([this, raw] { serve(raw); });
    return std::make_unique<PipeEnd>(std::move(pipe.b));
  }

 private:
  void serve(PipeEnd* end) {
    try {
      for (;;) {
        const auto frame = dls::serve::read_frame(*end);
        if (!frame) return;
        const ScheduleRequest request =
            dls::serve::decode_schedule_request(frame->payload);
        ScheduleResponse response = responder_(request);
        response.request_id = request.request_id;
        Frame reply;
        reply.type = FrameType::kScheduleResponse;
        reply.payload = dls::serve::encode_schedule_response(response);
        dls::serve::write_frame(*end, reply);
      }
    } catch (const dls::Error&) {
      // Torn down mid-read at destruction; nothing to do.
    }
  }

  Responder responder_;
  std::vector<std::unique_ptr<PipeEnd>> ends_;
  std::vector<std::thread> threads_;
};

ScheduleResponse ok_response(double makespan) {
  ScheduleResponse response;
  response.status = ScheduleStatus::kOk;
  response.alpha = {0.6, 0.4};
  response.makespan = makespan;
  return response;
}

TEST(ShardRouterTest, QuorumDivergenceIsATypedIncidentNeverAnAnswer) {
  // Two scripted shards disagree on the makespan: the router must
  // refuse with a typed kError, count the divergence, and never pick
  // one of the conflicting answers.
  std::vector<std::unique_ptr<FakeShard>> fakes;
  fakes.push_back(std::make_unique<FakeShard>(
      [](const ScheduleRequest&) { return ok_response(1.0); }));
  fakes.push_back(std::make_unique<FakeShard>(
      [](const ScheduleRequest&) { return ok_response(1.0 + 1e-9); }));

  RouterConfig config;
  config.shard_count = 2;
  config.replication = 2;
  config.probe_dead_shards = false;
  auto* backing = &fakes;
  config.connect = [backing](std::size_t shard) {
    return (*backing)[shard]->connect();
  };
  ShardRouter router(config);
  SchedulerClient client(router.connect());

  const std::vector<double> w = {1.0, 1.0};
  const std::vector<double> z = {0.1};
  const auto answer = client.schedule(w, z);
  EXPECT_EQ(answer.status, ScheduleStatus::kError);
  EXPECT_NE(answer.error.find("divergence"), std::string::npos);
  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.quorum_divergence, 1u);
  EXPECT_EQ(stats.answered_ok, 0u);
  client.close();
  router.stop();
}

TEST(ShardRouterTest, BackpressureMergeTakesTheLargestRetryAfter) {
  std::vector<std::unique_ptr<FakeShard>> fakes;
  for (const double hint : {500.0, 9000.0}) {
    fakes.push_back(
        std::make_unique<FakeShard>([hint](const ScheduleRequest&) {
          ScheduleResponse response;
          response.status = ScheduleStatus::kDegraded;
          response.retry_after_us = hint;
          return response;
        }));
  }
  RouterConfig config;
  config.shard_count = 2;
  config.replication = 2;
  config.probe_dead_shards = false;
  auto* backing = &fakes;
  config.connect = [backing](std::size_t shard) {
    return (*backing)[shard]->connect();
  };
  ShardRouter router(config);

  // Drive the frame exchange by hand: schedule() would retry nothing,
  // but we want the raw merged refusal.
  PipeEnd end = router.connect();
  ScheduleRequest request;
  request.request_id = 77;
  request.w = {1.0, 1.0};
  request.z = {0.1};
  Frame frame;
  frame.type = FrameType::kScheduleRequest;
  frame.payload = dls::serve::encode_schedule_request(request);
  dls::serve::write_frame(end, frame);
  const auto reply = dls::serve::read_frame(end);
  ASSERT_TRUE(reply.has_value());
  const ScheduleResponse merged =
      dls::serve::decode_schedule_response(reply->payload);
  EXPECT_EQ(merged.status, ScheduleStatus::kDegraded);
  EXPECT_EQ(merged.retry_after_us, 9000.0);
  EXPECT_EQ(merged.request_id, 77u);
  end.close();
  router.stop();
}

TEST(ShardRouterTest, HeartbeatBudgetDeathThenMonitorRevival) {
  auto service = std::make_unique<SchedulerService>(ServiceConfig{});
  std::atomic<bool> reachable{true};

  RouterConfig config;
  config.shard_count = 1;
  config.heartbeat.retry_budget = 2;
  config.heartbeat.period = 0.005;  // fast probes for the test
  config.heartbeat.max_backoff = 0.02;
  config.forward_timeout_s = 0.5;
  config.connect = [&](std::size_t) -> std::unique_ptr<Transport> {
    if (!reachable.load()) throw TransportError("shard unreachable");
    return std::make_unique<PipeEnd>(service->connect());
  };
  ShardRouter router(config);
  SchedulerClient client(router.connect());

  const std::vector<double> w = {1.0, 1.1};
  const std::vector<double> z = {0.1};
  ASSERT_EQ(client.schedule(w, z).status, ScheduleStatus::kOk);

  // Cut the shard off. The live backend link dies with the service;
  // the next requests burn the retry budget and confirm death.
  reachable.store(false);
  service->stop();
  ScheduleResponse refusal;
  for (int i = 0; i < 4; ++i) {
    refusal = client.schedule(w, z);
    if (router.stats().shard_deaths > 0) break;
  }
  EXPECT_NE(refusal.status, ScheduleStatus::kOk);
  RouterStats stats = router.stats();
  EXPECT_GE(stats.shard_deaths, 1u);
  EXPECT_GE(stats.rebalances, 1u);
  EXPECT_FALSE(router.alive()[0]);

  // Bring the shard back; the monitor's backoff probes must revive it.
  service = std::make_unique<SchedulerService>(ServiceConfig{});
  reachable.store(true);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!router.alive()[0] &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(router.alive()[0]);
  stats = router.stats();
  EXPECT_GE(stats.shard_revivals, 1u);
  EXPECT_GE(stats.rebalances, 2u);
  EXPECT_EQ(client.schedule(w, z).status, ScheduleStatus::kOk);

  client.close();
  router.stop();
  service->stop();
}

}  // namespace
