// Tests for the star/bus event-driven executor and multi-installment
// schedules.
#include <gtest/gtest.h>

#include "analysis/multiround.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "dlt/star.hpp"
#include "net/networks.hpp"
#include "sim/star_execution.hpp"

namespace {

using dls::analysis::MultiRoundSolution;
using dls::analysis::solve_multiround_star;
using dls::common::Rng;
using dls::dlt::solve_star;
using dls::dlt::star_finish_times;
using dls::net::StarNetwork;
using dls::sim::execute_star;
using dls::sim::Installment;
using dls::sim::single_installment;
using dls::sim::StarSchedule;

TEST(ExecuteStar, SingleInstallmentMatchesClosedForm) {
  Rng rng(71);
  for (int rep = 0; rep < 20; ++rep) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 12));
    const StarNetwork star =
        StarNetwork::random(m, rng, 0.5, 5.0, 0.05, 0.5, rep % 2 == 0);
    const auto sol = solve_star(star);
    const StarSchedule schedule =
        single_installment(star, sol.alpha_root, sol.alpha, sol.order);
    const auto result = execute_star(star, schedule);
    EXPECT_NEAR(result.makespan, sol.makespan, 1e-9);
    const auto closed = star_finish_times(star, sol);
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_NEAR(result.finish_time[i], closed[i + 1], 1e-9) << i;
      EXPECT_NEAR(result.computed[i], sol.alpha[i], 1e-12);
    }
    EXPECT_TRUE(result.trace.check_one_port().empty());
  }
}

TEST(ExecuteStar, ChunksQueueBehindEarlierWork) {
  // Two chunks to the same worker: the second computes after the first.
  const StarNetwork star(0.0, {1.0}, {0.1});
  StarSchedule schedule;
  schedule.sends = {Installment{0, 0.5}, Installment{0, 0.5}};
  const auto result = execute_star(star, schedule);
  // First chunk: arrives 0.05, computes until 0.55. Second: arrives
  // 0.10, queued until 0.55, finishes 1.05.
  EXPECT_NEAR(result.finish_time[0], 1.05, 1e-12);
  EXPECT_NEAR(result.computed[0], 1.0, 1e-12);
}

TEST(ExecuteStar, ValidatesSchedule) {
  const StarNetwork star(0.0, {1.0}, {0.1});
  StarSchedule bad;
  bad.sends = {Installment{0, 0.5}};  // covers only half the load
  EXPECT_THROW(execute_star(star, bad), dls::PreconditionError);
  StarSchedule oob;
  oob.sends = {Installment{3, 1.0}};
  EXPECT_THROW(execute_star(star, oob), dls::PreconditionError);
  StarSchedule root_share;
  root_share.root_share = 0.5;
  root_share.sends = {Installment{0, 0.5}};
  EXPECT_THROW(execute_star(star, root_share), dls::PreconditionError)
      << "non-computing root cannot keep a share";
}

TEST(MultiRound, OneRoundReproducesSolveStar) {
  Rng rng(73);
  for (int rep = 0; rep < 10; ++rep) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 8));
    const StarNetwork star =
        StarNetwork::random(m, rng, 0.5, 5.0, 0.05, 0.5, true);
    const MultiRoundSolution sol = solve_multiround_star(star, 1);
    EXPECT_LE(sol.makespan, solve_star(star).makespan + 1e-9);
  }
}

TEST(MultiRound, NeverWorseThanSingleRound) {
  Rng rng(74);
  for (int rep = 0; rep < 10; ++rep) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(2, 8));
    const StarNetwork star =
        StarNetwork::random(m, rng, 0.5, 5.0, 0.2, 1.0, rep % 2 == 0);
    const double single = solve_star(star).makespan;
    for (const std::size_t rounds : {2u, 4u, 8u}) {
      const MultiRoundSolution sol = solve_multiround_star(star, rounds);
      EXPECT_LE(sol.makespan, single + 1e-9)
          << "rounds " << rounds << " rep " << rep;
    }
  }
}

TEST(MultiRound, HelpsOnCommHeavyStars) {
  // Slow links: late workers idle a long time under a single
  // installment; multi-round must strictly improve.
  const StarNetwork star(1.0, {1.0, 1.0, 1.0, 1.0},
                         {0.8, 0.8, 0.8, 0.8});
  const double single = solve_star(star).makespan;
  const MultiRoundSolution multi = solve_multiround_star(star, 8);
  EXPECT_LT(multi.makespan, single * 0.98);
}

TEST(MultiRound, SchedulesAreValidAndTraced) {
  const StarNetwork star(1.0, {1.0, 2.0}, {0.3, 0.4});
  const MultiRoundSolution sol = solve_multiround_star(star, 4);
  EXPECT_NEAR(sol.schedule.total(), 1.0, 1e-9);
  const auto result = execute_star(star, sol.schedule);
  EXPECT_TRUE(result.trace.check_one_port().empty());
  EXPECT_NEAR(result.makespan, sol.makespan, 1e-12);
}

}  // namespace
