// Tests for the strategic behaviour models and agent populations.
#include <gtest/gtest.h>

#include "agents/agent.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace {

using dls::agents::Behavior;
using dls::agents::Population;
using dls::agents::StrategicAgent;
using dls::common::Rng;

TEST(Behavior, TruthfulIsFullyCompliant) {
  const Behavior b = Behavior::truthful();
  EXPECT_TRUE(b.follows_algorithm());
  EXPECT_TRUE(b.is_truthful_bid());
  EXPECT_DOUBLE_EQ(b.bid(1.5), 1.5);
  EXPECT_DOUBLE_EQ(b.actual_rate(1.5), 1.5);
}

TEST(Behavior, BidManipulationsAreInputsNotDeviations) {
  // Misreporting the bid is governed by strategyproofness, not fines —
  // it still "follows the algorithm" in the paper's sense.
  EXPECT_TRUE(Behavior::overbid(1.5).follows_algorithm());
  EXPECT_TRUE(Behavior::underbid(0.5).follows_algorithm());
  EXPECT_FALSE(Behavior::overbid(1.5).is_truthful_bid());
  EXPECT_DOUBLE_EQ(Behavior::overbid(2.0).bid(1.5), 3.0);
  EXPECT_DOUBLE_EQ(Behavior::underbid(0.5).bid(1.5), 0.75);
}

TEST(Behavior, AlgorithmDeviationsAreFlagged) {
  EXPECT_FALSE(Behavior::slow_execution(1.5).follows_algorithm());
  EXPECT_FALSE(Behavior::load_shedder(0.3).follows_algorithm());
  EXPECT_FALSE(Behavior::contradictor().follows_algorithm());
  EXPECT_FALSE(Behavior::miscomputer().follows_algorithm());
  EXPECT_FALSE(Behavior::overcharger(0.1).follows_algorithm());
  EXPECT_FALSE(Behavior::false_accuser().follows_algorithm());
  EXPECT_FALSE(Behavior::data_corruptor().follows_algorithm());
  EXPECT_FALSE(Behavior::colluding_victim().follows_algorithm());
}

TEST(Behavior, ActualRateNeverBeatsCapacity) {
  // w̃ >= t always: a sub-1 slowdown is clamped to capacity.
  Behavior b;
  b.slowdown = 0.5;
  EXPECT_DOUBLE_EQ(b.actual_rate(2.0), 2.0);
  EXPECT_DOUBLE_EQ(Behavior::slow_execution(1.5).actual_rate(2.0), 3.0);
}

TEST(Behavior, FactoriesValidateArguments) {
  EXPECT_THROW(Behavior::overbid(0.9), dls::PreconditionError);
  EXPECT_THROW(Behavior::underbid(1.1), dls::PreconditionError);
  EXPECT_THROW(Behavior::underbid(0.0), dls::PreconditionError);
  EXPECT_THROW(Behavior::slow_execution(0.9), dls::PreconditionError);
  EXPECT_THROW(Behavior::load_shedder(0.0), dls::PreconditionError);
  EXPECT_THROW(Behavior::load_shedder(1.5), dls::PreconditionError);
  EXPECT_THROW(Behavior::overcharger(-1.0), dls::PreconditionError);
}

TEST(Behavior, NamesIdentifyTheStrategy) {
  EXPECT_EQ(Behavior::truthful().name, "truthful");
  EXPECT_EQ(Behavior::load_shedder(0.5).name, "load-shedder");
  EXPECT_EQ(Behavior::colluding_victim().name, "colluding-victim");
}

TEST(Population, IndexingIsOneBasedAndContiguous) {
  const Population pop({StrategicAgent{1, 1.0, {}},
                        StrategicAgent{2, 2.0, {}}});
  EXPECT_EQ(pop.size(), 2u);
  EXPECT_DOUBLE_EQ(pop.agent(1).true_rate, 1.0);
  EXPECT_DOUBLE_EQ(pop.agent(2).true_rate, 2.0);
  EXPECT_THROW(pop.agent(0), dls::PreconditionError);
  EXPECT_THROW(pop.agent(3), dls::PreconditionError);
}

TEST(Population, RejectsBadConstruction) {
  EXPECT_THROW(Population({}), dls::PreconditionError);
  EXPECT_THROW(Population({StrategicAgent{2, 1.0, {}}}),
               dls::PreconditionError);  // must start at 1
  EXPECT_THROW(Population({StrategicAgent{1, 1.0, {}},
                           StrategicAgent{3, 1.0, {}}}),
               dls::PreconditionError);  // must be contiguous
  EXPECT_THROW(Population({StrategicAgent{1, -1.0, {}}}),
               dls::PreconditionError);  // positive rates
}

TEST(Population, BidAndRateVectorsFollowBehaviors) {
  Population pop({StrategicAgent{1, 1.0, Behavior::overbid(2.0)},
                  StrategicAgent{2, 2.0, Behavior::slow_execution(1.5)}});
  const auto bids = pop.bids();
  const auto rates = pop.actual_rates();
  EXPECT_DOUBLE_EQ(bids[0], 2.0);
  EXPECT_DOUBLE_EQ(bids[1], 2.0);  // truthful bid despite slow execution
  EXPECT_DOUBLE_EQ(rates[0], 1.0);
  EXPECT_DOUBLE_EQ(rates[1], 3.0);
}

TEST(Population, RandomTruthfulStaysInRange) {
  Rng rng(5);
  const Population pop = Population::random_truthful(20, rng, 0.5, 5.0);
  EXPECT_EQ(pop.size(), 20u);
  for (const auto& agent : pop.all()) {
    EXPECT_GE(agent.true_rate, 0.5);
    EXPECT_LE(agent.true_rate, 5.0);
    EXPECT_TRUE(agent.behavior.follows_algorithm());
  }
}

}  // namespace
