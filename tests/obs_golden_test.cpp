// Golden-trace test: the Chrome trace JSON of the canonical Figure 2
// scenario (m = 3 equal workers) is pinned byte-for-byte. Timestamps
// come from the logical clock and the run is single-threaded, so the
// file is fully deterministic at a given DLS_OBS_LEVEL.
//
// The golden is generated at DLS_OBS_LEVEL=2 (the level CI builds run
// at); other levels skip rather than fail. To bless an intentional
// change, run tools/regen_goldens.sh, which rebuilds at level 2 and
// re-runs this test with DLS_REGEN_GOLDENS=1.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "agents/agent.hpp"
#include "net/networks.hpp"
#include "obs/obs.hpp"
#include "obs/trace_export.hpp"
#include "protocol/runner.hpp"

namespace {

using dls::agents::Behavior;
using dls::agents::Population;
using dls::agents::StrategicAgent;
using dls::net::LinearNetwork;
using dls::obs::MetricsRegistry;
using dls::obs::TraceSink;

std::string golden_path() {
  return std::string(DLS_GOLDEN_DIR) + "/fig2_m3_trace.json";
}

std::string render_fig2_trace() {
  dls::obs::use_logical_clock();
  TraceSink::global().clear();
  MetricsRegistry::global().reset();
  dls::obs::set_active(true);

  // The Figure 2 chain: root + three equal workers, equal links.
  const LinearNetwork net({1.0, 1.0, 1.0, 1.0}, {0.2, 0.2, 0.2});
  const Population pop({StrategicAgent{1, 1.0, Behavior::truthful()},
                        StrategicAgent{2, 1.0, Behavior::truthful()},
                        StrategicAgent{3, 1.0, Behavior::truthful()}});
  dls::protocol::ProtocolOptions options;
  options.seed = 42;
  const auto report = dls::protocol::run_protocol(net, pop, options);
  EXPECT_FALSE(report.aborted);

  dls::obs::set_active(false);
  const auto events = TraceSink::global().drain();
  const auto metrics = MetricsRegistry::global().snapshot();
  std::ostringstream out;
  dls::obs::write_chrome_trace(out, events, &metrics);

  TraceSink::global().clear();
  MetricsRegistry::global().reset();
  dls::obs::use_steady_clock();
  return out.str();
}

TEST(ObsGolden, Fig2TraceMatchesGolden) {
  if (DLS_OBS_LEVEL != 2) {
    GTEST_SKIP() << "golden pinned at DLS_OBS_LEVEL=2, compiled level is "
                 << DLS_OBS_LEVEL;
  }
  const std::string actual = render_fig2_trace();

  if (std::getenv("DLS_REGEN_GOLDENS") != nullptr) {
    std::ofstream out(golden_path());
    ASSERT_TRUE(out) << "cannot write " << golden_path();
    out << actual;
    GTEST_SKIP() << "golden regenerated at " << golden_path();
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in) << "missing golden " << golden_path()
                  << " — run tools/regen_goldens.sh";
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string expected = buf.str();

  // Byte-for-byte: any change to span placement, naming, event order or
  // exporter formatting must be blessed via tools/regen_goldens.sh.
  EXPECT_EQ(actual, expected)
      << "trace drifted from the golden; if intentional, run "
         "tools/regen_goldens.sh";
}

TEST(ObsGolden, Fig2TraceIsStableAcrossRenders) {
  // Level-independent sanity: two renders in one process are identical.
  const std::string a = render_fig2_trace();
  const std::string b = render_fig2_trace();
  EXPECT_EQ(a, b);
}

}  // namespace
