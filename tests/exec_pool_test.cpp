// Tests for the persistent work-stealing pool (exec/thread_pool.hpp):
// coverage, determinism at any worker count, grain control, exception
// propagation with cancellation, and nesting.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <functional>
#include <vector>

#include "analysis/experiments.hpp"
#include "analysis/sweep.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "exec/thread_pool.hpp"
#include "net/networks.hpp"

namespace {

using dls::exec::ForOptions;
using dls::exec::ThreadPool;

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kCount = 10'000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kCount; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ChunkApiCoversEveryIndexOnceUnderTinyGrain) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1'237;  // prime: uneven final chunk
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for_chunks(
      kCount,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) ++hits[i];
      },
      ForOptions{.grain = 3});
  for (std::size_t i = 0; i < kCount; ++i) ASSERT_EQ(hits[i].load(), 1);
}

// The core contract of the sweep engine: because every index writes only
// its own slot and draws from its own RNG stream, a sweep is
// bit-identical at 1, 2 and N workers.
TEST(ThreadPool, SweepsAreBitIdenticalAtAnyWorkerCount) {
  ThreadPool pool(7);
  constexpr std::size_t kCount = 501;
  const auto run = [&](std::size_t max_workers, std::size_t grain) {
    std::vector<double> out(kCount);
    pool.parallel_for(
        kCount,
        [&](std::size_t i) {
          dls::common::Rng rng(42 + i);
          out[i] = rng.uniform(0.0, 1.0) + rng.normal();
        },
        ForOptions{.grain = grain, .max_workers = max_workers});
    return out;
  };
  const auto serial = run(1, 0);
  EXPECT_EQ(serial, run(2, 0));
  EXPECT_EQ(serial, run(0, 0));   // all workers
  EXPECT_EQ(serial, run(0, 1));   // pathological grain: chunk per index
  EXPECT_EQ(serial, run(5, 64));  // coarse chunks
}

// A real solver sweep (the workload the pool exists for) must also be
// bit-identical: utility_vs_bid per index at every worker count.
TEST(ThreadPool, SolverSweepBitIdenticalAcrossWorkerCounts) {
  constexpr std::size_t kInstances = 48;
  const dls::core::MechanismConfig config;
  const auto run = [&](std::size_t workers) {
    std::vector<double> gap(kInstances);
    ThreadPool::global().parallel_for(
        kInstances,
        [&](std::size_t rep) {
          dls::common::Rng rng(531 + 7919 * rep);
          const auto m = static_cast<std::size_t>(rng.uniform_int(1, 8));
          const auto net = dls::net::LinearNetwork::random(
              m + 1, rng, dls::analysis::kWLo, dls::analysis::kWHi,
              dls::analysis::kZLo, dls::analysis::kZHi);
          const auto i = static_cast<std::size_t>(
              rng.uniform_int(1, static_cast<std::int64_t>(m)));
          const auto grid = dls::analysis::logspace(0.5, 2.0, 17);
          const auto curve =
              dls::analysis::utility_vs_bid(net, i, grid, config);
          gap[rep] = dls::analysis::max_truth_advantage_gap(curve);
        },
        {.max_workers = workers});
    return gap;
  };
  const auto serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(0));
}

// A body that throws mid-sweep cancels the job and rethrows on the
// caller — at every worker count, for repeated submissions.
TEST(ThreadPool, ThrowingBodyPropagatesAtEveryWorkerCount) {
  ThreadPool pool(5);
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{0}}) {
    for (int repeat = 0; repeat < 3; ++repeat) {
      std::vector<int> out(300, 0);
      EXPECT_THROW(
          pool.parallel_for(
              out.size(),
              [&](std::size_t i) {
                if (i == 137) throw dls::Error("boom");
                out[i] = static_cast<int>(i);
              },
              ForOptions{.max_workers = workers}),
          dls::Error);
      // Indices that did run wrote their own slot correctly.
      for (std::size_t i = 0; i < out.size(); ++i) {
        if (i != 137 && out[i] != 0) {
          EXPECT_EQ(out[i], static_cast<int>(i));
        }
      }
    }
    // The pool survives the exception: the next sweep runs to completion
    // with results identical to a serial run.
    std::vector<std::size_t> ok(100);
    pool.parallel_for(ok.size(), [&](std::size_t i) { ok[i] = i * i; },
                      ForOptions{.max_workers = workers});
    for (std::size_t i = 0; i < ok.size(); ++i) EXPECT_EQ(ok[i], i * i);
  }
}

TEST(ThreadPool, LowestIndexExceptionWinsWhenEveryBodyThrows) {
  ThreadPool pool(4);
  // Every chunk throws; the recorded error must be the lowest chunk's.
  try {
    pool.parallel_for_chunks(
        64,
        [](std::size_t begin, std::size_t) {
          throw dls::Error("chunk " + std::to_string(begin));
        },
        ForOptions{.grain = 16});
    FAIL() << "expected a throw";
  } catch (const dls::Error& e) {
    EXPECT_STREQ(e.what(), "chunk 0");
  }
}

TEST(ThreadPool, NestedSubmissionsRunInline) {
  ThreadPool pool(3);
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 32;
  std::vector<std::vector<int>> out(kOuter, std::vector<int>(kInner, 0));
  pool.parallel_for(kOuter, [&](std::size_t i) {
    pool.parallel_for(kInner, [&](std::size_t j) {
      out[i][j] = static_cast<int>(i * kInner + j);
    });
  });
  for (std::size_t i = 0; i < kOuter; ++i) {
    for (std::size_t j = 0; j < kInner; ++j) {
      EXPECT_EQ(out[i][j], static_cast<int>(i * kInner + j));
    }
  }
}

TEST(ThreadPool, EmptyAndTinyRanges) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> atomic_calls{0};
  pool.parallel_for(1, [&](std::size_t) { ++atomic_calls; },
                    ForOptions{.max_workers = 16});
  EXPECT_EQ(atomic_calls.load(), 1);
}

TEST(ThreadPool, GlobalPoolIsShared) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.worker_count(), 1u);
}

TEST(ThreadPool, WorkerCapMatchesSerialAndRejectsNullBody) {
  // max_workers = 1 is serial, 0 uses the whole pool, and results are
  // identical either way; a null body is a precondition violation.
  constexpr std::size_t kCount = 256;
  std::vector<double> serial(kCount), pooled(kCount);
  ThreadPool::global().parallel_for(
      kCount,
      [&](std::size_t i) {
        dls::common::Rng rng(7 * i + 1);
        serial[i] = rng.uniform01();
      },
      {.max_workers = 1});
  ThreadPool::global().parallel_for(kCount, [&](std::size_t i) {
    dls::common::Rng rng(7 * i + 1);
    pooled[i] = rng.uniform01();
  });
  EXPECT_EQ(serial, pooled);
  EXPECT_THROW(
      ThreadPool::global().parallel_for(
          4, std::function<void(std::size_t)>{}),
      dls::PreconditionError);
}

}  // namespace
