// Pinned to DLS_CHECK_LEVEL=0 below, overriding whatever level the
// build configured project-wide: compiled-out DLS_CHECK / DLS_DCHECK
// must evaluate their arguments ZERO times — not once, not lazily,
// never — while still parsing them (the sizeof trick), so a level
// change cannot bit-rot call sites. This is its own tiny executable
// rather than a gtest target because mixing TUs compiled at different
// check levels into one binary would be an ODR violation; it links
// none of the project libraries.
#include <cstdio>

#undef DLS_CHECK_LEVEL
#define DLS_CHECK_LEVEL 0

#include "check/contracts.hpp"

static_assert(dls::check::compiled_level() == 0,
              "this test only makes sense at DLS_CHECK_LEVEL=0; the "
              "target-scoped compile definition did not apply");
static_assert(!dls::check::enabled(1) && !dls::check::enabled(2),
              "no contract tier may be enabled at level 0");

namespace {

int g_evaluations = 0;

bool bump_and_pass() {
  ++g_evaluations;
  return true;
}

bool bump_and_fail() {
  ++g_evaluations;
  return false;
}

const char* bump_message() {
  ++g_evaluations;
  return "should never be built";
}

}  // namespace

int main() {
  // Passing, failing and message-side expressions alike: none may run.
  DLS_CHECK(bump_and_pass(), "plain message");
  DLS_CHECK(bump_and_fail(), bump_message());
  DLS_DCHECK(bump_and_pass(), "plain message");
  DLS_DCHECK(bump_and_fail(), bump_message());

  // Macros in loop bodies are the common shape on hot paths; the
  // counter must stay at zero across iterations too.
  for (int i = 0; i < 1000; ++i) {
    DLS_CHECK(bump_and_fail(), bump_message());
    DLS_DCHECK((g_evaluations += 1) == 0, bump_message());
  }

  if (g_evaluations != 0) {
    std::fprintf(stderr,
                 "FAIL: compiled-out contracts evaluated arguments %d "
                 "time(s); expected 0\n",
                 g_evaluations);
    return 1;
  }
  std::puts("ok: compiled-out DLS_CHECK/DLS_DCHECK evaluated arguments "
            "0 times");
  return 0;
}
