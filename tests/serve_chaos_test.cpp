// Unit coverage for the chaos-hardening layer: ChaosTransport fault
// manifestation and determinism, seeded fuzz of the frame decoder under
// corruption (nothing may escape the typed DecodeError/TransportError
// surface), the RetryPolicy backoff schedules and the circuit breaker
// state machine.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "codec/bytes.hpp"
#include "common/rng.hpp"
#include "protocol/recovery.hpp"
#include "serve/chaos.hpp"
#include "serve/frame.hpp"
#include "serve/pipe.hpp"
#include "serve/retry.hpp"

namespace {

using dls::codec::Bytes;
using dls::codec::DecodeError;
using dls::serve::BackoffSchedule;
using dls::serve::BreakerConfig;
using dls::serve::BreakerState;
using dls::serve::ChaosConfig;
using dls::serve::ChaosTransport;
using dls::serve::CircuitBreaker;
using dls::serve::FaultKind;
using dls::serve::FaultStats;
using dls::serve::Frame;
using dls::serve::FrameTruncationError;
using dls::serve::FrameType;
using dls::serve::make_pipe;
using dls::serve::Pipe;
using dls::serve::RetryPolicy;
using dls::serve::TransportError;

Bytes bytes_of(std::initializer_list<int> values) {
  Bytes out;
  for (const int v : values) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

Frame test_frame() {
  return Frame{FrameType::kReport, bytes_of({10, 20, 30, 40, 50})};
}

TEST(ChaosTransportTest, CleanConfigIsTransparent) {
  Pipe pipe = make_pipe();
  ChaosTransport chaotic(std::move(pipe.a), ChaosConfig{}, 1);
  dls::serve::write_frame(chaotic, test_frame());
  const auto got = dls::serve::read_frame(pipe.b);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, test_frame().payload);
  EXPECT_EQ(chaotic.stats().total_injected(), 0u);
  EXPECT_EQ(chaotic.stats().writes, 1u);
}

TEST(ChaosTransportTest, DisconnectDropsFrameAndUnblocksReader) {
  Pipe pipe = make_pipe();
  ChaosTransport chaotic(std::move(pipe.a),
                         ChaosConfig::only(FaultKind::kDisconnect, 1.0), 7);
  dls::serve::write_frame(chaotic, test_frame());  // vanishes silently
  EXPECT_FALSE(dls::serve::read_frame(pipe.b).has_value());  // EOF, no hang
  EXPECT_EQ(chaotic.stats().count(FaultKind::kDisconnect), 1u);
}

TEST(ChaosTransportTest, TruncateTearsTheFrame) {
  Pipe pipe = make_pipe();
  ChaosTransport chaotic(std::move(pipe.a),
                         ChaosConfig::only(FaultKind::kTruncate, 1.0), 7);
  dls::serve::write_frame(chaotic, test_frame());
  try {
    dls::serve::read_frame(pipe.b);
    FAIL() << "torn frame accepted";
  } catch (const FrameTruncationError& e) {
    EXPECT_TRUE(e.peer_closed());
  } catch (const DecodeError&) {
    // A cut inside the header decodes as garbage — also acceptable.
  }
  EXPECT_EQ(chaotic.stats().count(FaultKind::kTruncate), 1u);
}

TEST(ChaosTransportTest, CorruptFlipsExactlyOneBit) {
  Pipe pipe = make_pipe();
  ChaosConfig config;
  config.corrupt = 1.0;  // write-side only; reads stay clean
  ChaosTransport chaotic(std::move(pipe.a), config, 7);
  const Bytes sent = bytes_of({1, 2, 3, 4, 5, 6, 7, 8});
  chaotic.write(sent);
  Bytes got(sent.size());
  ASSERT_TRUE(pipe.b.read_exact(got));
  int flipped_bits = 0;
  for (std::size_t i = 0; i < sent.size(); ++i) {
    std::uint8_t diff = static_cast<std::uint8_t>(sent[i] ^ got[i]);
    while (diff != 0) {
      flipped_bits += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(flipped_bits, 1);
  EXPECT_EQ(chaotic.stats().count(FaultKind::kCorrupt), 1u);
}

TEST(ChaosTransportTest, DuplicateDeliversTheFrameTwice) {
  Pipe pipe = make_pipe();
  ChaosTransport chaotic(std::move(pipe.a),
                         ChaosConfig::only(FaultKind::kDuplicate, 1.0), 7);
  dls::serve::write_frame(chaotic, test_frame());
  const auto first = dls::serve::read_frame(pipe.b);
  const auto second = dls::serve::read_frame(pipe.b);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->payload, second->payload);
}

TEST(ChaosTransportTest, PartialWriteAndDelayPreserveBytes) {
  for (const FaultKind kind :
       {FaultKind::kPartialWrite, FaultKind::kDelay}) {
    Pipe pipe = make_pipe();
    ChaosConfig config = ChaosConfig::only(kind, 1.0);
    config.max_delay_us = 50.0;  // keep the test fast
    config.read_delay = 0.0;     // write-side only
    ChaosTransport chaotic(std::move(pipe.a), config, 7);
    dls::serve::write_frame(chaotic, test_frame());
    const auto got = dls::serve::read_frame(pipe.b);
    ASSERT_TRUE(got.has_value()) << to_string(kind);
    EXPECT_EQ(got->payload, test_frame().payload) << to_string(kind);
    EXPECT_GE(chaotic.stats().count(kind), 1u) << to_string(kind);
  }
}

TEST(ChaosTransportTest, SameSeedReplaysBitIdentically) {
  ChaosConfig config;
  config.corrupt = 0.4;
  config.partial_write = 0.3;
  config.duplicate = 0.2;
  const auto run = [&](std::uint64_t seed) {
    Pipe pipe = make_pipe();
    ChaosTransport chaotic(std::move(pipe.a), config, seed);
    Bytes received;
    for (int i = 0; i < 32; ++i) {
      chaotic.write(bytes_of({i, i + 1, i + 2, i + 3}));
    }
    chaotic.close();
    Bytes chunk(4);
    while (pipe.b.read_exact(chunk)) {
      received.insert(received.end(), chunk.begin(), chunk.end());
    }
    return std::pair(received, chaotic.stats());
  };
  const auto [bytes_a, stats_a] = run(42);
  const auto [bytes_b, stats_b] = run(42);
  const auto [bytes_c, stats_c] = run(43);
  EXPECT_EQ(bytes_a, bytes_b);
  EXPECT_EQ(stats_a.injected, stats_b.injected);
  // A different seed takes a different fault path (overwhelmingly).
  EXPECT_TRUE(bytes_a != bytes_c || stats_a.injected != stats_c.injected);
}

// Seeded fuzz: random single-frame buffers mangled by bit flips,
// truncation and trailing bytes must decode or throw DecodeError —
// nothing else may escape.
TEST(ChaosFuzzTest, BufferDecodeNeverEscapesTypedErrors) {
  dls::common::Rng rng(20260809);
  int decoded = 0;
  int rejected = 0;
  for (int round = 0; round < 2000; ++round) {
    const std::size_t payload_len =
        static_cast<std::size_t>(rng.uniform_int(0, 40));
    Frame frame;
    frame.type = static_cast<FrameType>(rng.uniform_int(1, 6));
    frame.payload.resize(payload_len);
    for (auto& b : frame.payload) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    Bytes wire = dls::serve::encode_frame(frame);
    // Mangle: flip up to 3 bits, maybe truncate, maybe append garbage.
    const int flips = static_cast<int>(rng.uniform_int(0, 3));
    for (int f = 0; f < flips; ++f) {
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(wire.size()) - 1));
      wire[at] ^= static_cast<std::uint8_t>(1U << rng.uniform_int(0, 7));
    }
    if (rng.bernoulli(0.3) && !wire.empty()) {
      wire.resize(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(wire.size()))));
    }
    if (rng.bernoulli(0.3)) {
      const int extra = static_cast<int>(rng.uniform_int(1, 8));
      for (int e = 0; e < extra; ++e) {
        wire.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
      }
    }
    try {
      const Frame got = dls::serve::decode_frame(wire);
      EXPECT_LE(got.payload.size(), wire.size());
      ++decoded;
    } catch (const DecodeError&) {
      ++rejected;  // FrameTruncationError included
    } catch (...) {
      FAIL() << "decode_frame leaked a non-DecodeError exception";
    }
  }
  // Both paths must actually exercise (sanity on the fuzz distribution).
  EXPECT_GT(decoded, 0);
  EXPECT_GT(rejected, 0);
}

// Stream fuzz under ChaosTransport corruption: the reader must always
// terminate with a frame, EOF, or a typed error — never anything else.
TEST(ChaosFuzzTest, StreamReadNeverEscapesTypedErrors) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    Pipe pipe = make_pipe();
    ChaosConfig config;
    config.corrupt = 0.35;
    config.truncate = 0.1;
    config.duplicate = 0.25;
    config.partial_write = 0.25;
    ChaosTransport chaotic(std::move(pipe.a), config, seed);
    dls::common::Rng rng(seed * 977);
    bool stream_alive = true;
    for (int i = 0; i < 16 && stream_alive; ++i) {
      Frame frame;
      frame.type = static_cast<FrameType>(rng.uniform_int(1, 6));
      frame.payload.resize(static_cast<std::size_t>(rng.uniform_int(0, 24)));
      for (auto& b : frame.payload) {
        b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      }
      try {
        dls::serve::write_frame(chaotic, frame);
      } catch (const TransportError&) {
        stream_alive = false;  // an earlier fault killed the stream
      }
    }
    chaotic.close();
    for (;;) {
      try {
        std::size_t skipped = 0;
        const auto got =
            dls::serve::read_frame_resync(pipe.b, 4096, &skipped);
        if (!got.has_value()) break;  // clean EOF
      } catch (const DecodeError&) {
        break;  // typed rejection (truncation, garbage past scan budget)
      } catch (const TransportError&) {
        break;  // typed transport failure
      } catch (...) {
        FAIL() << "stream read leaked a non-typed exception (seed "
               << seed << ")";
      }
    }
  }
}

TEST(RetryPolicyTest, DeterministicLadderMatchesSharedBackoffCore) {
  RetryPolicy policy;
  policy.decorrelated_jitter = false;
  policy.base_delay_s = 0.001;
  policy.backoff_factor = 2.0;
  policy.max_delay_s = 0.02;
  BackoffSchedule schedule(policy, 5);
  for (std::size_t attempt = 0; attempt < 10; ++attempt) {
    EXPECT_DOUBLE_EQ(schedule.next_delay_s(),
                     dls::protocol::exponential_backoff(0.001, 2.0, attempt,
                                                        0.02));
  }
}

TEST(RetryPolicyTest, DecorrelatedJitterStaysInBoundsAndReplays) {
  RetryPolicy policy;  // jitter on by default
  policy.base_delay_s = 0.001;
  policy.max_delay_s = 0.05;
  BackoffSchedule a(policy, 11);
  BackoffSchedule b(policy, 11);
  BackoffSchedule c(policy, 12);
  double prev = 0.0;
  bool any_difference = false;
  for (int i = 0; i < 50; ++i) {
    const double delay = a.next_delay_s();
    EXPECT_GE(delay, policy.base_delay_s);
    EXPECT_LE(delay, policy.max_delay_s);
    if (prev > 0.0) {
      EXPECT_LE(delay, std::max(prev * 3.0, policy.base_delay_s));
    }
    EXPECT_DOUBLE_EQ(delay, b.next_delay_s());  // same seed, same ladder
    if (delay != c.next_delay_s()) any_difference = true;
    prev = delay;
  }
  EXPECT_TRUE(any_difference) << "different seeds produced equal ladders";
}

TEST(CircuitBreakerTest, OpensAfterThresholdAndRejects) {
  BreakerConfig config;
  config.failure_threshold = 3;
  config.open_cooldown_s = 60.0;  // effectively forever for this test
  CircuitBreaker breaker(config);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(breaker.allow());
    breaker.record_failure();
  }
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.allow());
  EXPECT_FALSE(breaker.allow());
}

TEST(CircuitBreakerTest, SuccessesKeepItClosed) {
  BreakerConfig config;
  config.failure_threshold = 2;
  CircuitBreaker breaker(config);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(breaker.allow());
    // Failures never accumulate to the threshold when successes
    // interleave: the count is *consecutive*.
    breaker.record_failure();
    breaker.record_success();
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenProbesThenClosesOrReopens) {
  BreakerConfig config;
  config.failure_threshold = 1;
  config.open_cooldown_s = 0.0;  // cooldown elapses immediately
  config.half_open_probes = 1;
  CircuitBreaker breaker(config);

  breaker.record_failure();  // after one admitted call fails...
  // (state: open; cooldown 0 so the next allow() goes half-open)
  EXPECT_TRUE(breaker.allow());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.allow());  // only one probe in flight
  breaker.record_failure();       // the probe failed: straight back open
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);

  EXPECT_TRUE(breaker.allow());  // cooldown 0: probe again
  breaker.record_success();      // probe landed: closed for business
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow());
}

}  // namespace
