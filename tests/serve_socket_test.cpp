// SocketTransport conformance + adversarial coverage: the Transport
// seam contract on real TCP and Unix-domain sockets, the
// FrameTruncationError taxonomy for peer-close vs. mid-frame death,
// slow-loris partial writes, checksum-poisoned frames with
// read_frame_resync re-alignment, and the full chaos fuzz
// (ChaosTransport) running over a real socket with the robustness
// contract intact: no untyped error ever escapes.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "codec/bytes.hpp"
#include "common/rng.hpp"
#include "dlt/linear.hpp"
#include "net/networks.hpp"
#include "serve/chaos.hpp"
#include "serve/client.hpp"
#include "serve/frame.hpp"
#include "serve/service.hpp"
#include "serve/socket.hpp"

namespace {

using dls::codec::Bytes;
using dls::serve::ChaosConfig;
using dls::serve::ChaosTransport;
using dls::serve::Frame;
using dls::serve::FrameChecksumError;
using dls::serve::FrameTruncationError;
using dls::serve::FrameType;
using dls::serve::ReadOutcome;
using dls::serve::ScheduleOptions;
using dls::serve::ScheduleStatus;
using dls::serve::SchedulerClient;
using dls::serve::SchedulerService;
using dls::serve::ServiceConfig;
using dls::serve::SocketListener;
using dls::serve::SocketTransport;
using dls::serve::Transport;
using dls::serve::TransportError;
using dls::serve::TransportTimeout;

std::string unix_path(const char* tag) {
  return "/tmp/dls_socket_test_" + std::to_string(::getpid()) + "_" + tag +
         ".sock";
}

/// A connected (client, server) SocketTransport pair over `kind`.
struct SocketPair {
  SocketListener listener;
  std::unique_ptr<SocketTransport> client;
  std::unique_ptr<SocketTransport> server;
};

SocketPair make_pair_over(const std::string& kind) {
  SocketPair pair;
  if (kind == "unix") {
    pair.listener = SocketListener::listen_unix(unix_path(kind.c_str()));
  } else {
    pair.listener = SocketListener::listen_tcp(0);
  }
  pair.client = dls::serve::connect_endpoint(pair.listener.endpoint());
  pair.server = pair.listener.accept(/*timeout_s=*/5.0);
  EXPECT_NE(pair.server, nullptr);
  return pair;
}

Frame test_frame(std::size_t payload_size = 32) {
  Frame frame;
  frame.type = FrameType::kScheduleRequest;
  frame.payload.resize(payload_size);
  for (std::size_t i = 0; i < payload_size; ++i) {
    frame.payload[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }
  return frame;
}

TEST(SocketTransportTest, FramesRoundTripBothDirectionsBothFamilies) {
  for (const std::string kind : {"tcp", "unix"}) {
    SocketPair pair = make_pair_over(kind);
    dls::serve::write_frame(*pair.client, test_frame(100));
    const auto at_server = dls::serve::read_frame(*pair.server);
    ASSERT_TRUE(at_server.has_value()) << kind;
    EXPECT_EQ(at_server->payload, test_frame(100).payload) << kind;

    Frame reply = test_frame(7);
    reply.type = FrameType::kScheduleResponse;
    dls::serve::write_frame(*pair.server, reply);
    const auto at_client = dls::serve::read_frame(*pair.client);
    ASSERT_TRUE(at_client.has_value()) << kind;
    EXPECT_EQ(at_client->type, FrameType::kScheduleResponse) << kind;
  }
}

TEST(SocketTransportTest, TimeoutConsumesNothingAndBytesStayStaged) {
  SocketPair pair = make_pair_over("tcp");
  const Bytes first = {1, 2, 3, 4, 5};
  pair.client->write(first);

  // Ask for 10 with only 5 en route: the deadline lapses, and the seam
  // contract says nothing is consumed.
  Bytes out(10, 0xEE);
  ReadOutcome got = pair.server->read_partial(out, 0.05);
  EXPECT_FALSE(got.complete);
  EXPECT_FALSE(got.closed);
  EXPECT_EQ(got.received, 0u);

  // The second half arrives: the staged 5 bytes lead the stream.
  const Bytes second = {6, 7, 8, 9, 10};
  pair.client->write(second);
  got = pair.server->read_partial(out, 5.0);
  ASSERT_TRUE(got.complete);
  EXPECT_EQ(out, Bytes({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));
}

TEST(SocketTransportTest, CleanEofAtUnitBoundaryReportsFalse) {
  SocketPair pair = make_pair_over("unix");
  const Bytes unit = {9, 9, 9, 9};
  pair.client->write(unit);
  pair.client->close();
  Bytes out(4);
  EXPECT_TRUE(pair.server->read_exact(out));
  EXPECT_EQ(out, unit);
  EXPECT_FALSE(pair.server->read_exact(out));  // clean EOF
}

TEST(SocketTransportTest, PeerCloseMidUnitThrowsTransportError) {
  SocketPair pair = make_pair_over("tcp");
  const Bytes partial = {1, 2, 3};
  pair.client->write(partial);
  pair.client->close();
  Bytes out(8);
  EXPECT_THROW(pair.server->read_exact(out), TransportError);
}

TEST(SocketTransportTest, WriteAfterCloseThrowsAndValidFlips) {
  SocketPair pair = make_pair_over("tcp");
  EXPECT_TRUE(pair.client->valid());
  pair.client->close();
  pair.client->close();  // idempotent
  EXPECT_FALSE(pair.client->valid());
  const Bytes unit = {1};
  EXPECT_THROW(pair.client->write(unit), TransportError);
}

TEST(SocketTransportTest, MidFramePeerCloseIsTypedTruncation) {
  for (const std::string kind : {"tcp", "unix"}) {
    SocketPair pair = make_pair_over(kind);
    const Bytes encoded = dls::serve::encode_frame(test_frame(64));
    // Header plus a strict prefix of the payload, then the peer dies.
    pair.client->write(
        std::span(encoded).first(dls::serve::kFrameHeaderSize + 20));
    pair.client->close();
    try {
      dls::serve::read_frame(*pair.server);
      FAIL() << kind << ": torn frame decoded";
    } catch (const FrameTruncationError& e) {
      EXPECT_TRUE(e.peer_closed()) << kind;
      EXPECT_EQ(e.received(), 20u) << kind;
    }
  }
}

TEST(SocketTransportTest, SlowLorisDeliversIntactAndTimesOutTyped) {
  SocketPair pair = make_pair_over("tcp");
  const Bytes encoded = dls::serve::encode_frame(test_frame(48));

  // A reader with a tight deadline sees a typed timeout, not a hang or
  // an untyped error, while the loris dribbles.
  pair.client->write(std::span(encoded).first(3));
  EXPECT_THROW(dls::serve::read_frame(*pair.server, 0.05),
               TransportTimeout);

  // Drip the rest one byte at a time; the frame must assemble intact.
  std::thread loris([&] {
    for (std::size_t i = 3; i < encoded.size(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      pair.client->write(std::span(encoded).subspan(i, 1));
    }
  });
  const auto got = dls::serve::read_frame(*pair.server, 30.0);
  loris.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, test_frame(48).payload);
}

TEST(SocketTransportTest, ChecksumPoisonOverSocketKeepsStreamAligned) {
  SocketPair pair = make_pair_over("tcp");
  Bytes poisoned = dls::serve::encode_frame(test_frame(40));
  poisoned[dls::serve::kFrameHeaderSize + 11] ^= 0x20;  // payload bit flip
  pair.client->write(poisoned);
  dls::serve::write_frame(*pair.client, test_frame(16));

  EXPECT_THROW(dls::serve::read_frame(*pair.server), FrameChecksumError);
  // The poisoned payload was fully consumed, so the next frame decodes.
  const auto next = dls::serve::read_frame(*pair.server);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->payload, test_frame(16).payload);
}

TEST(SocketTransportTest, ResyncRealignsPastGarbageOverSocket) {
  SocketPair pair = make_pair_over("unix");
  const Bytes garbage = {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01, 0x02};
  pair.client->write(garbage);
  dls::serve::write_frame(*pair.client, test_frame(24));

  std::size_t skipped = 0;
  const auto got =
      dls::serve::read_frame_resync(*pair.server, /*max_scan_bytes=*/4096,
                                    &skipped, /*timeout_s=*/10.0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(skipped, garbage.size());
  EXPECT_EQ(got->payload, test_frame(24).payload);
}

/// A SchedulerService accepting real socket connections in a
/// background thread, for the end-to-end and chaos-over-socket tests.
struct SocketService {
  explicit SocketService(const ServiceConfig& config, bool unix_domain)
      : service(config) {
    listener = unix_domain
                   ? SocketListener::listen_unix(unix_path("svc"))
                   : SocketListener::listen_tcp(0);
    acceptor = std::thread([this] {
      while (listener.valid()) {
        auto accepted = listener.accept(/*timeout_s=*/0.2);
        if (accepted) service.adopt(std::move(accepted));
      }
    });
  }
  ~SocketService() {
    listener.close();
    acceptor.join();
    service.stop();
  }
  SchedulerService service;
  SocketListener listener;
  std::thread acceptor;
};

TEST(SocketServiceTest, ServiceWorksUnchangedOverRealSockets) {
  for (const bool unix_domain : {false, true}) {
    ServiceConfig config;
    config.cache_capacity = 32;
    SocketService harness(config, unix_domain);

    SchedulerClient client(
        dls::serve::connect_endpoint(harness.listener.endpoint()));
    const std::vector<double> w = {1.0, 1.2, 0.9};
    const std::vector<double> z = {0.15, 0.1};
    const auto cold = client.schedule(w, z);
    ASSERT_EQ(cold.status, ScheduleStatus::kOk);
    const auto warm = client.schedule(w, z);
    ASSERT_EQ(warm.status, ScheduleStatus::kOk);
    EXPECT_TRUE(warm.cache_hit);
    EXPECT_EQ(cold.alpha, warm.alpha);
    EXPECT_EQ(cold.makespan, warm.makespan);

    ScheduleOptions pay;
    pay.want_payments = true;
    const auto paid = client.schedule(w, z, pay);
    ASSERT_EQ(paid.status, ScheduleStatus::kOk);
    EXPECT_FALSE(paid.payments.empty());
    client.close();
  }
}

TEST(SocketServiceTest, ChaosFuzzOverRealSocketNeverEscapesUntyped) {
  ServiceConfig config;
  config.cache_capacity = 16;
  config.poison_budget = 6;
  SocketService harness(config, /*unix_domain=*/false);

  const std::vector<double> w = {1.0, 1.4, 0.8, 1.1};
  const std::vector<double> z = {0.12, 0.2, 0.08};
  const dls::net::LinearNetwork network(w, z);
  dls::dlt::LinearSolution truth;
  dls::dlt::solve_linear_boundary_into(network, truth,
                                       /*want_steps=*/false);

  ChaosConfig chaos;
  chaos.partial_write = 0.15;
  chaos.truncate = 0.08;
  chaos.corrupt = 0.1;
  chaos.delay = 0.1;
  chaos.disconnect = 0.1;
  chaos.duplicate = 0.15;
  chaos.read_corrupt = 0.05;
  chaos.read_delay = 0.05;
  chaos.max_delay_us = 100.0;

  std::uint64_t connection = 0;
  const auto chaotic_connect = [&]() -> std::unique_ptr<Transport> {
    ++connection;
    return std::make_unique<ChaosTransport>(
        dls::serve::connect_endpoint(harness.listener.endpoint()), chaos,
        0xFEED5EED ^ (connection * 0x9e3779b97f4a7c15ull));
  };

  SchedulerClient client(chaotic_connect());
  dls::serve::RobustOptions robust;
  robust.policy.base_delay_s = 0.0002;
  robust.policy.max_delay_s = 0.005;
  robust.policy.max_attempts = 12;
  robust.policy.attempt_deadline_s = 0.25;
  robust.policy.total_deadline_s = 20.0;
  robust.reconnect = chaotic_connect;
  robust.seed = 4242;

  int landed = 0;
  for (int i = 0; i < 40; ++i) {
    // Every call must end typed: an answer, a refusal, or an exhausted
    // budget. Any other exception escaping IS the test failure.
    const auto result =
        client.schedule_robust(w, z, ScheduleOptions{}, robust);
    if (result.outcome != dls::serve::RobustOutcome::kAnswered) continue;
    if (result.response.status != ScheduleStatus::kOk) continue;
    ++landed;
    EXPECT_EQ(result.response.alpha, truth.alpha) << "request " << i;
    EXPECT_EQ(result.response.makespan, truth.makespan) << "request " << i;
  }
  EXPECT_GT(landed, 0);  // the fuzz must not refuse everything
  client.close();
}

TEST(SocketListenerTest, AcceptTimesOutAndCloseWakesAccept) {
  SocketListener listener = SocketListener::listen_tcp(0);
  EXPECT_EQ(listener.accept(/*timeout_s=*/0.05), nullptr);

  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    listener.close();
  });
  // A blocked accept returns nullptr once the listener closes instead
  // of hanging forever.
  EXPECT_EQ(listener.accept(/*timeout_s=*/30.0), nullptr);
  closer.join();
}

TEST(SocketTransportTest, ConnectToDeadPortIsTypedError) {
  std::uint16_t port = 0;
  {
    const SocketListener listener = SocketListener::listen_tcp(0);
    port = listener.port();
  }  // fully released: the port now refuses connections
  EXPECT_THROW(dls::serve::connect_tcp("127.0.0.1", port, 1.0),
               TransportError);
}

}  // namespace
