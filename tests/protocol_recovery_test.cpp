// Tests for the fault-tolerant protocol layer: heartbeat/probe crash
// detection, the crash-vs-shedding disambiguation rule, survivor
// re-solve, and E_j settlement of crashed processors.
//
// Acceptance properties (any single non-root crash at any work
// fraction): the protocol completes, survivors cover the full unit
// load, the ledger conserves money, the crashed node receives an
// E_j-based settlement for its verified partial work and no fine, and
// two same-seed runs replay bit-identically.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "net/networks.hpp"
#include "protocol/recovery.hpp"
#include "protocol/session.hpp"
#include "sim/faults.hpp"

namespace {

using dls::agents::Behavior;
using dls::agents::Population;
using dls::agents::StrategicAgent;
using dls::common::Rng;
using dls::net::LinearNetwork;
using dls::protocol::classify_under_computation;
using dls::protocol::DetectionReport;
using dls::protocol::FaultToleranceOptions;
using dls::protocol::FtRunReport;
using dls::protocol::HeartbeatConfig;
using dls::protocol::Incident;
using dls::protocol::monitor_processor;
using dls::protocol::ProtocolOptions;
using dls::protocol::run_protocol;
using dls::protocol::run_protocol_ft;
using dls::protocol::UnderComputeVerdict;
using dls::sim::FaultPlan;

LinearNetwork test_network() {
  return LinearNetwork({1.0, 1.2, 0.8, 1.5, 1.0, 1.3},
                       {0.15, 0.1, 0.2, 0.1, 0.15});
}

Population truthful_population(const LinearNetwork& net) {
  std::vector<StrategicAgent> agents;
  for (std::size_t i = 1; i < net.size(); ++i) {
    agents.push_back(StrategicAgent{i, net.w(i), Behavior::truthful()});
  }
  return Population(std::move(agents));
}

FtRunReport run_ft(const FaultPlan& faults,
                   const LinearNetwork& net = test_network(),
                   std::uint64_t seed = 7) {
  ProtocolOptions options;
  options.seed = seed;
  FaultToleranceOptions ft;
  ft.faults = faults;
  return run_protocol_ft(net, truthful_population(net), options, ft);
}

// ---------------------------------------------------------------------------
// Heartbeat / probe monitoring (timeouts, retries, backoff).

TEST(MonitorProcessor, LiveWorkerOnCleanLinkIsNeverSuspected) {
  const DetectionReport report = monitor_processor(
      HeartbeatConfig{}, std::nullopt, 0.0, /*horizon=*/3.0, Rng(1));
  EXPECT_FALSE(report.confirmed_dead);
  EXPECT_FALSE(report.false_alarm);
  EXPECT_EQ(report.probes_sent, 0u);
  EXPECT_EQ(report.timeouts, 0u);
}

TEST(MonitorProcessor, CrashIsConfirmedAfterTheRetryBudget) {
  HeartbeatConfig cfg;
  const DetectionReport report =
      monitor_processor(cfg, /*crash_time=*/1.0, 0.0, 3.0, Rng(2));
  EXPECT_TRUE(report.confirmed_dead);
  EXPECT_FALSE(report.false_alarm);
  EXPECT_EQ(report.probes_sent, cfg.retry_budget);
  EXPECT_GT(report.confirmed_at, 1.0);
  EXPECT_GT(report.latency(), 0.0);
  // Detection takes at least period + timeout (the first deadline) and
  // at most the full backoff ladder past the crash.
  double ladder = cfg.period + cfg.timeout;
  double wait = cfg.timeout;
  for (std::size_t r = 0; r < cfg.retry_budget; ++r) {
    ladder += std::min(wait, cfg.max_backoff);
    wait *= cfg.backoff_factor;
  }
  EXPECT_LE(report.latency(), ladder + cfg.period + 1e-9);
}

TEST(MonitorProcessor, LossyLinkCausesRetriesButNoFalseAlarm) {
  // 20% loss on every beat/probe/reply: the retry machinery must absorb
  // the misses without declaring a live worker dead (budget 3 would
  // need three consecutive losses exactly when a deadline expired).
  HeartbeatConfig cfg;
  cfg.retry_budget = 5;
  std::size_t timeouts = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const DetectionReport report =
        monitor_processor(cfg, std::nullopt, 0.2, 5.0, Rng(seed));
    EXPECT_FALSE(report.confirmed_dead) << "seed " << seed;
    timeouts += report.timeouts;
  }
  EXPECT_GT(timeouts, 0u);  // losses did trigger the probe path
}

TEST(MonitorProcessor, CrashOnLossyLinkIsStillConfirmed) {
  const DetectionReport report =
      monitor_processor(HeartbeatConfig{}, /*crash_time=*/0.7, 0.3, 5.0,
                        Rng(77));
  EXPECT_TRUE(report.confirmed_dead);
  EXPECT_GT(report.latency(), 0.0);
}

TEST(MonitorProcessor, SameSeedReplaysIdentically) {
  const DetectionReport a =
      monitor_processor(HeartbeatConfig{}, 1.3, 0.25, 6.0, Rng(5));
  const DetectionReport b =
      monitor_processor(HeartbeatConfig{}, 1.3, 0.25, 6.0, Rng(5));
  EXPECT_EQ(a.confirmed_dead, b.confirmed_dead);
  EXPECT_DOUBLE_EQ(a.confirmed_at, b.confirmed_at);
  EXPECT_EQ(a.probes_sent, b.probes_sent);
  EXPECT_EQ(a.timeouts, b.timeouts);
}

TEST(MonitorProcessor, ValidatesConfig) {
  HeartbeatConfig bad;
  bad.retry_budget = 0;
  EXPECT_THROW(monitor_processor(bad, std::nullopt, 0.0, 1.0, Rng(1)),
               dls::PreconditionError);
  EXPECT_THROW(
      monitor_processor(HeartbeatConfig{}, std::nullopt, 1.0, 1.0, Rng(1)),
      dls::PreconditionError);
}

// ---------------------------------------------------------------------------
// The crash-vs-shedding disambiguation rule.

TEST(ClassifyUnderComputation, FullComputationIsCompliant) {
  EXPECT_EQ(classify_under_computation(0.3, 0.3, false, false, 1e-3),
            UnderComputeVerdict::kCompliant);
}

TEST(ClassifyUnderComputation, DeadSilentNodeWithoutTokenEvidenceCrashed) {
  EXPECT_EQ(classify_under_computation(0.3, 0.1, true, false, 1e-3),
            UnderComputeVerdict::kCrash);
}

TEST(ClassifyUnderComputation, ExcessTokensConvictShedderEvenIfItDied) {
  // Token evidence outlives the node: dump then die is still shedding.
  EXPECT_EQ(classify_under_computation(0.3, 0.1, true, true, 1e-3),
            UnderComputeVerdict::kShedding);
  EXPECT_EQ(classify_under_computation(0.3, 0.1, false, true, 1e-3),
            UnderComputeVerdict::kShedding);
}

TEST(ClassifyUnderComputation, SlowButAliveNodeIsMerelyMetered) {
  EXPECT_EQ(classify_under_computation(0.3, 0.1, false, false, 1e-3),
            UnderComputeVerdict::kCompliant);
}

// ---------------------------------------------------------------------------
// run_protocol_ft acceptance properties.

TEST(RunProtocolFt, EmptyPlanMatchesThePlainProtocol) {
  const LinearNetwork net = test_network();
  ProtocolOptions options;
  options.seed = 7;
  const auto plain = run_protocol(net, truthful_population(net), options);
  const FtRunReport ft = run_ft(FaultPlan{});
  EXPECT_FALSE(ft.any_crash);
  EXPECT_TRUE(ft.recovered);
  ASSERT_EQ(ft.round.processors.size(), plain.processors.size());
  for (std::size_t i = 0; i < plain.processors.size(); ++i) {
    EXPECT_DOUBLE_EQ(ft.round.processors[i].utility,
                     plain.processors[i].utility)
        << i;
  }
}

TEST(RunProtocolFt, RejectsRootCrash) {
  EXPECT_THROW(run_ft(FaultPlan{}.crash_at_time(0, 1.0)),
               dls::PreconditionError);
}

// The headline acceptance sweep: every non-root processor, crashing at
// an early, middle, or late point of its own work.
TEST(RunProtocolFt, AnySingleCrashIsDetectedSettledAndRecovered) {
  const LinearNetwork net = test_network();
  for (std::size_t k = 1; k < net.size(); ++k) {
    for (const double fraction : {0.1, 0.5, 0.9}) {
      SCOPED_TRACE("P" + std::to_string(k) + " crashing at " +
                   std::to_string(fraction));
      const FtRunReport ft = run_ft(FaultPlan{}.crash_at_work(k, fraction));

      // The protocol completes and survivors absorb the full load.
      EXPECT_FALSE(ft.round.aborted);
      EXPECT_TRUE(ft.any_crash);
      EXPECT_TRUE(ft.recovered);
      double covered = 0.0;
      for (const auto& p : ft.round.processors) covered += p.computed;
      EXPECT_NEAR(covered, 1.0, 1e-9);

      // Money is conserved across the partially-settled round.
      EXPECT_NEAR(ft.round.ledger.conservation_residual(), 0.0, 1e-9);

      // The crashed node is settled, not fined.
      ASSERT_EQ(ft.crashes.size(), 1u);
      const auto& settlement = ft.crashes[0];
      EXPECT_EQ(settlement.processor, k);
      EXPECT_DOUBLE_EQ(settlement.fine, 0.0);
      EXPECT_LT(settlement.verified_computed, settlement.assigned);
      EXPECT_GT(settlement.verified_computed, 0.0);
      // E_j-style pay: verified work at the metered (= true) rate.
      EXPECT_NEAR(settlement.settlement_paid,
                  settlement.verified_computed * net.w(k), 1e-6);
      const auto& report = ft.round.processors[k];
      EXPECT_DOUBLE_EQ(report.fines, 0.0);
      EXPECT_NEAR(report.payment, settlement.settlement_paid, 1e-9);
      // Made whole for effort, not rewarded beyond it.
      EXPECT_NEAR(report.utility, 0.0, 1e-9);

      // Detection forensics are on the incident log.
      bool crash_incident = false;
      for (const Incident& inc : ft.round.incidents) {
        EXPECT_NE(inc.kind, Incident::Kind::kLoadShedding);
        if (inc.kind == Incident::Kind::kCrash && inc.accused == k) {
          crash_incident = true;
          EXPECT_DOUBLE_EQ(inc.fine, 0.0);
        }
      }
      EXPECT_TRUE(crash_incident);
      EXPECT_GT(ft.detection_latency, 0.0);
      EXPECT_GE(ft.degraded_makespan, ft.round.solution.makespan - 1e-9);

      // Survivors that absorbed extra load are paid for it.
      for (const std::size_t s : ft.survivors) {
        if (s == 0) continue;
        const auto& p = ft.round.processors[s];
        if (p.computed > p.assigned + 1e-9) {
          EXPECT_GT(p.payment, 0.0) << "survivor P" << s;
        }
        EXPECT_DOUBLE_EQ(p.fines, 0.0) << "survivor P" << s;
      }
    }
  }
}

TEST(RunProtocolFt, DoubleCrashStillRecovers) {
  const FtRunReport ft =
      run_ft(FaultPlan{}.crash_at_work(2, 0.3).crash_at_work(4, 0.6));
  EXPECT_TRUE(ft.recovered);
  EXPECT_EQ(ft.crashes.size(), 2u);
  double covered = 0.0;
  for (const auto& p : ft.round.processors) covered += p.computed;
  EXPECT_NEAR(covered, 1.0, 1e-9);
  EXPECT_NEAR(ft.round.ledger.conservation_residual(), 0.0, 1e-9);
  // The recovery prefix stops before the first crashed node.
  for (const std::size_t s : ft.survivors) {
    EXPECT_FALSE(s == 2 || s == 4);
  }
}

TEST(RunProtocolFt, ImmediateCrashOfTheFirstWorkerLeavesTheRootAlone) {
  // P1 dies instantly: nothing can be relayed, the root re-solves over
  // the single-processor prefix and computes the entire residual.
  const FtRunReport ft = run_ft(FaultPlan{}.crash_at_time(1, 0.0));
  EXPECT_TRUE(ft.recovered);
  double covered = 0.0;
  for (const auto& p : ft.round.processors) covered += p.computed;
  EXPECT_NEAR(covered, 1.0, 1e-9);
  EXPECT_NEAR(ft.round.ledger.conservation_residual(), 0.0, 1e-9);
  // The victim computed nothing, so its settlement is zero — and it is
  // still not fined.
  ASSERT_EQ(ft.crashes.size(), 1u);
  EXPECT_DOUBLE_EQ(ft.crashes[0].settlement_paid, 0.0);
  EXPECT_DOUBLE_EQ(ft.round.processors[1].fines, 0.0);
}

TEST(RunProtocolFt, SheddingIsStillFinedUnderAnActiveFaultPlan) {
  // P2 dumps half its share while P4 genuinely crashes: the token
  // evidence convicts the shedder, the silent node is settled.
  const LinearNetwork net = test_network();
  std::vector<StrategicAgent> agents;
  for (std::size_t i = 1; i < net.size(); ++i) {
    agents.push_back(StrategicAgent{
        i, net.w(i),
        i == 2 ? Behavior::load_shedder(0.5) : Behavior::truthful()});
  }
  ProtocolOptions options;
  options.seed = 7;
  FaultToleranceOptions ft_options;
  ft_options.faults = FaultPlan{}.crash_at_work(4, 0.5);
  const FtRunReport ft = run_protocol_ft(net, Population(std::move(agents)),
                                         options, ft_options);
  EXPECT_EQ(ft.verdicts[2], UnderComputeVerdict::kShedding);
  EXPECT_EQ(ft.verdicts[4], UnderComputeVerdict::kCrash);
  EXPECT_GT(ft.round.processors[2].fines, 0.0);
  EXPECT_DOUBLE_EQ(ft.round.processors[4].fines, 0.0);
  EXPECT_NEAR(ft.round.ledger.conservation_residual(), 0.0, 1e-9);
}

TEST(RunProtocolFt, MeterDropoutFallsBackToTheDeclaredRate) {
  const LinearNetwork net = test_network();
  const FtRunReport ft = run_ft(FaultPlan{}.meter_dropout(3));
  // Truthful agents: the declared rate equals the true rate, so the
  // dropout changes nothing about the assessment.
  EXPECT_NEAR(ft.round.processors[3].actual_rate, net.w(3), 1e-12);
  EXPECT_TRUE(ft.recovered);
  EXPECT_NEAR(ft.round.ledger.conservation_residual(), 0.0, 1e-9);
}

TEST(RunProtocolFt, SameSeedRunsReplayBitIdentically) {
  const FaultPlan plan =
      FaultPlan{42}.crash_at_work(3, 0.4).drop_messages(5, 0.3);
  const FtRunReport a = run_ft(plan);
  const FtRunReport b = run_ft(plan);
  ASSERT_TRUE(a.round.execution.has_value());
  ASSERT_TRUE(b.round.execution.has_value());
  const auto& ta = a.round.execution->trace.intervals();
  const auto& tb = b.round.execution->trace.intervals();
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].processor, tb[i].processor);
    EXPECT_EQ(ta[i].activity, tb[i].activity);
    EXPECT_DOUBLE_EQ(ta[i].start, tb[i].start);
    EXPECT_DOUBLE_EQ(ta[i].end, tb[i].end);
    EXPECT_DOUBLE_EQ(ta[i].amount, tb[i].amount);
  }
  for (std::size_t i = 0; i < a.round.processors.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.round.processors[i].computed,
                     b.round.processors[i].computed);
    EXPECT_DOUBLE_EQ(a.round.processors[i].payment,
                     b.round.processors[i].payment);
    EXPECT_DOUBLE_EQ(a.round.processors[i].utility,
                     b.round.processors[i].utility);
  }
  EXPECT_DOUBLE_EQ(a.degraded_makespan, b.degraded_makespan);
  EXPECT_DOUBLE_EQ(a.detection_latency, b.detection_latency);
}

// ---------------------------------------------------------------------------
// Session integration: crashes accumulate forensics but no strikes.

TEST(Session, CrashesAreSettledWithoutReputationStrikes) {
  const LinearNetwork net = test_network();
  dls::protocol::SessionOptions options;
  options.rounds = 6;
  options.round_options.seed = 11;
  options.crash_probability = 0.35;
  const auto session =
      dls::protocol::run_session(net, truthful_population(net), options);
  ASSERT_EQ(session.rounds.size(), 6u);
  // With p=0.35 over 5 workers and 6 rounds a crash is overwhelmingly
  // likely under the fixed session seed.
  EXPECT_GT(session.crashes_total, 0u);
  EXPECT_GT(session.mean_detection_latency(), 0.0);
  // Truthful processors never earn strikes, crashes included.
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_EQ(session.strikes[i], 0u) << i;
    EXPECT_FALSE(session.is_excluded(i)) << i;
  }
  std::size_t counted = 0;
  for (const std::size_t c : session.crash_counts) counted += c;
  EXPECT_EQ(counted, session.crashes_total);
  // Every round conserves money.
  for (const auto& round : session.rounds) {
    EXPECT_NEAR(round.ledger.conservation_residual(), 0.0, 1e-9);
  }
}

}  // namespace
