// Tests for the piecewise-linear machinery and the affine-cost chain
// solver, including brute-force validation on small instances.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/tolerance.hpp"
#include "dlt/affine.hpp"
#include "dlt/linear.hpp"
#include "dlt/piecewise.hpp"
#include "net/networks.hpp"

namespace {

using dls::common::Rng;
using dls::dlt::affine_finish_times;
using dls::dlt::AffineChainSolution;
using dls::dlt::PiecewiseLinear;
using dls::dlt::solve_linear_boundary;
using dls::dlt::solve_linear_boundary_affine;
using dls::net::LinearNetwork;

TEST(PiecewiseLinear, EvaluatesWithInterpolationAndClamping) {
  const PiecewiseLinear f({{0.0, 1.0}, {1.0, 3.0}, {2.0, 3.0}});
  EXPECT_DOUBLE_EQ(f(0.0), 1.0);
  EXPECT_DOUBLE_EQ(f(0.5), 2.0);
  EXPECT_DOUBLE_EQ(f(1.5), 3.0);
  EXPECT_DOUBLE_EQ(f(-1.0), 1.0);  // clamped
  EXPECT_DOUBLE_EQ(f(5.0), 3.0);   // clamped
}

TEST(PiecewiseLinear, AffineFactory) {
  const auto f = PiecewiseLinear::affine(2.0, 3.0, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(f(0.0), 2.0);
  EXPECT_DOUBLE_EQ(f(0.5), 3.5);
}

TEST(PiecewiseLinear, MinFindsCrossings) {
  const auto f = PiecewiseLinear::affine(0.0, 1.0, 0.0, 1.0);   // y = x
  const auto g = PiecewiseLinear::affine(0.5, 0.0, 0.0, 1.0);   // y = 0.5
  const auto m = PiecewiseLinear::min(f, g);
  EXPECT_DOUBLE_EQ(m(0.2), 0.2);
  EXPECT_DOUBLE_EQ(m(0.5), 0.5);
  EXPECT_DOUBLE_EQ(m(0.8), 0.5);
  // Random cross-check against direct evaluation.
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform01();
    EXPECT_NEAR(m(x), std::min(f(x), g(x)), 1e-12);
  }
}

TEST(PiecewiseLinear, PlusAffineShifts) {
  const auto f = PiecewiseLinear::affine(1.0, 1.0, 0.0, 1.0);
  const auto g = f.plus_affine(0.5, 2.0);
  EXPECT_DOUBLE_EQ(g(0.0), 1.5);
  EXPECT_DOUBLE_EQ(g(1.0), 4.5);
}

TEST(PiecewiseLinear, SimplifyDropsCollinearPoints) {
  PiecewiseLinear f({{0.0, 0.0}, {0.5, 0.5}, {1.0, 1.0}});
  f.simplify();
  EXPECT_EQ(f.points().size(), 2u);
}

TEST(PiecewiseLinear, RejectsBadBreakpoints) {
  EXPECT_THROW(PiecewiseLinear({}), dls::PreconditionError);
  EXPECT_THROW(PiecewiseLinear({{0.0, 0.0}, {0.0, 1.0}}),
               dls::PreconditionError);
}

// ---------------------------------------------------------------------

TEST(AffineSolver, ZeroStartupsReproduceAlgorithm1) {
  Rng rng(61);
  for (int rep = 0; rep < 15; ++rep) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 20));
    const LinearNetwork net =
        LinearNetwork::random(m + 1, rng, 0.5, 5.0, 0.05, 0.5);
    const std::vector<double> zero(net.size(), 0.0);
    const AffineChainSolution affine =
        solve_linear_boundary_affine(net, zero);
    const auto linear = solve_linear_boundary(net);
    EXPECT_NEAR(affine.makespan, linear.makespan, 1e-9) << net.describe();
    for (std::size_t i = 0; i < net.size(); ++i) {
      EXPECT_NEAR(affine.alpha[i], linear.alpha[i], 1e-7) << "P" << i;
    }
    EXPECT_EQ(affine.participants, net.size());
  }
}

TEST(AffineSolver, FinishTimesEqualAmongParticipants) {
  Rng rng(62);
  for (int rep = 0; rep < 15; ++rep) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 15));
    const LinearNetwork net =
        LinearNetwork::random(m + 1, rng, 0.5, 5.0, 0.05, 0.5);
    std::vector<double> startup(net.size());
    for (auto& s : startup) s = rng.uniform(0.0, 0.3);
    const AffineChainSolution sol =
        solve_linear_boundary_affine(net, startup);
    const auto finish = affine_finish_times(net, startup, sol.alpha);
    double spread_lo = 1e300, spread_hi = 0.0;
    for (std::size_t i = 0; i < net.size(); ++i) {
      if (sol.alpha[i] <= 1e-12) continue;
      spread_lo = std::min(spread_lo, finish[i]);
      spread_hi = std::max(spread_hi, finish[i]);
    }
    // All computing processors finish together (the equalise option) —
    // except possibly a keep-all truncation point, which ends the chain.
    EXPECT_LE(dls::common::relative_error(spread_lo, spread_hi), 1e-6);
    EXPECT_NEAR(spread_hi, sol.makespan, 1e-6 * std::max(1.0, spread_hi));
  }
}

TEST(AffineSolver, UniformStartupsKeepEveryoneIn) {
  // Startups are paid in parallel: a uniform startup shifts every finish
  // time by the same amount and the linear allocation stays optimal.
  const LinearNetwork net = LinearNetwork::uniform(8, 1.0, 0.2);
  const std::vector<double> startup(net.size(), 3.0);
  const AffineChainSolution sol = solve_linear_boundary_affine(net, startup);
  EXPECT_EQ(sol.participants, net.size());
  const auto linear = solve_linear_boundary(net);
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_NEAR(sol.alpha[i], linear.alpha[i], 1e-6);
  }
  EXPECT_NEAR(sol.makespan, linear.makespan + 3.0, 1e-6);
}

TEST(AffineSolver, StartupGradientShrinksParticipation) {
  // Startups that grow along the chain make deep processors too
  // expensive to wake up: participation shrinks as the gradient grows.
  const LinearNetwork net = LinearNetwork::uniform(8, 1.0, 0.2);
  std::size_t last = net.size() + 1;
  for (const double g : {0.0, 0.05, 0.2, 0.8, 3.0}) {
    std::vector<double> startup(net.size());
    for (std::size_t i = 0; i < net.size(); ++i) {
      startup[i] = g * static_cast<double>(i);
    }
    const AffineChainSolution sol =
        solve_linear_boundary_affine(net, startup);
    EXPECT_LE(sol.participants, last) << "gradient = " << g;
    last = sol.participants;
  }
  // With colossal non-root startups only the root computes.
  std::vector<double> huge(net.size(), 100.0);
  huge[0] = 0.0;
  EXPECT_EQ(solve_linear_boundary_affine(net, huge).participants, 1u);
}

TEST(AffineSolver, SkipsAProcessorWithPathologicalStartup) {
  // P1 has a prohibitive startup but sits between two good machines: the
  // optimum relays through it without paying s_1.
  const LinearNetwork net({1.0, 1.0, 1.0}, {0.05, 0.05});
  const std::vector<double> startup = {0.0, 5.0, 0.0};
  const AffineChainSolution sol = solve_linear_boundary_affine(net, startup);
  EXPECT_FALSE(sol.computes[1]);
  EXPECT_GT(sol.alpha[0], 0.0);
  EXPECT_GT(sol.alpha[2], 0.0);
  EXPECT_DOUBLE_EQ(sol.alpha[1], 0.0);
}

TEST(AffineSolver, MakespanMonotoneInStartups) {
  Rng rng(63);
  const LinearNetwork net =
      LinearNetwork::random(6, rng, 0.5, 5.0, 0.05, 0.5);
  std::vector<double> startup(net.size(), 0.0);
  double prev = solve_linear_boundary_affine(net, startup).makespan;
  for (int step = 0; step < 6; ++step) {
    for (auto& s : startup) s += 0.05;
    const double cur = solve_linear_boundary_affine(net, startup).makespan;
    EXPECT_GE(cur, prev - 1e-9);
    prev = cur;
  }
}

TEST(AffineSolver, BruteForceAgreementOnThreeProcessors) {
  // Exhaustive grid over (α_0, α_1) with α_2 = 1 − α_0 − α_1, including
  // the boundary (skip) cases; the solver must match the grid optimum up
  // to grid resolution.
  Rng rng(64);
  for (int rep = 0; rep < 6; ++rep) {
    const LinearNetwork net =
        LinearNetwork::random(3, rng, 0.5, 3.0, 0.05, 0.5);
    std::vector<double> startup(3);
    for (auto& s : startup) s = rng.uniform(0.0, 0.4);
    const AffineChainSolution sol =
        solve_linear_boundary_affine(net, startup);

    constexpr int kGrid = 400;
    double best = 1e300;
    for (int a = 0; a <= kGrid; ++a) {
      const double a0 = static_cast<double>(a) / kGrid;
      for (int b = 0; a + b <= kGrid; ++b) {
        const double a1 = static_cast<double>(b) / kGrid;
        const std::vector<double> alpha = {a0, a1, 1.0 - a0 - a1};
        const auto finish = affine_finish_times(net, startup, alpha);
        best = std::min(best,
                        *std::max_element(finish.begin(), finish.end()));
      }
    }
    EXPECT_LE(sol.makespan, best + 1e-9) << "solver worse than grid";
    EXPECT_GE(sol.makespan, best - 2.0 / kGrid) << "grid far below solver";
  }
}

TEST(AffineSolver, RejectsBadInputs) {
  const LinearNetwork net({1.0, 1.0}, {0.2});
  EXPECT_THROW(
      solve_linear_boundary_affine(net, std::vector<double>{0.0}),
      dls::PreconditionError);
  EXPECT_THROW(
      solve_linear_boundary_affine(net, std::vector<double>{0.0, -1.0}),
      dls::PreconditionError);
}

}  // namespace
