// Tests for SHA-256 / HMAC-SHA256 (against published test vectors), the
// PKI registry and the signed-claim layer.
#include <gtest/gtest.h>

#include "codec/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/pki.hpp"
#include "crypto/sha256.hpp"
#include "crypto/signed_claim.hpp"

namespace {

using dls::codec::to_hex;
using dls::common::Rng;
using namespace dls::crypto;

std::string hex_of(const Digest& digest) {
  return to_hex(std::span<const std::uint8_t>(digest.data(), digest.size()));
}

// FIPS 180-4 test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_of(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_of(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_of(Sha256::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_of(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Rng rng(3);
  std::vector<std::uint8_t> data(1531);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.bits());
  Sha256 h;
  std::size_t pos = 0;
  const std::size_t cuts[] = {1, 63, 64, 65, 500, 838};
  for (const std::size_t cut : cuts) {
    h.update(std::span<const std::uint8_t>(data.data() + pos, cut));
    pos += cut;
  }
  EXPECT_EQ(pos, data.size());
  EXPECT_EQ(hex_of(h.finish()), hex_of(Sha256::hash(data)));
}

// RFC 4231 test case 2.
TEST(HmacSha256, Rfc4231Case2) {
  const std::string key = "Jefe";
  const std::string data = "what do ya want for nothing?";
  const Digest mac = hmac_sha256(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(key.data()), key.size()),
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
  EXPECT_EQ(hex_of(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3 (key and data of 0xaa/0xdd bytes).
TEST(HmacSha256, Rfc4231Case3) {
  const std::vector<std::uint8_t> key(20, 0xaa);
  const std::vector<std::uint8_t> data(50, 0xdd);
  EXPECT_EQ(hex_of(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6 (key longer than the block size).
TEST(HmacSha256, Rfc4231LongKey) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  const std::string data = "Test Using Larger Than Block-Size Key - Hash Key First";
  EXPECT_EQ(hex_of(hmac_sha256(
                key, std::span<const std::uint8_t>(
                         reinterpret_cast<const std::uint8_t*>(data.data()),
                         data.size()))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(DigestEqual, ConstantTimeComparisonSemantics) {
  Digest a{}, b{};
  EXPECT_TRUE(digest_equal(a, b));
  b[31] = 1;
  EXPECT_FALSE(digest_equal(a, b));
}

TEST(Pki, EnrollAndVerify) {
  Rng rng(1);
  KeyRegistry registry;
  const Signer alice = registry.enroll(1, rng);
  const std::vector<std::uint8_t> msg = {1, 2, 3};
  const Signature sig = alice.sign(msg);
  EXPECT_TRUE(registry.verify(1, msg, sig));
}

TEST(Pki, WrongSignerFails) {
  Rng rng(1);
  KeyRegistry registry;
  const Signer alice = registry.enroll(1, rng);
  registry.enroll(2, rng);
  const std::vector<std::uint8_t> msg = {1, 2, 3};
  EXPECT_FALSE(registry.verify(2, msg, alice.sign(msg)));
}

TEST(Pki, TamperedMessageFails) {
  Rng rng(1);
  KeyRegistry registry;
  const Signer alice = registry.enroll(1, rng);
  std::vector<std::uint8_t> msg = {1, 2, 3};
  const Signature sig = alice.sign(msg);
  msg[0] = 9;
  EXPECT_FALSE(registry.verify(1, msg, sig));
}

TEST(Pki, UnknownSignerVerifiesFalse) {
  KeyRegistry registry;
  EXPECT_FALSE(registry.verify(99, std::vector<std::uint8_t>{1}, Signature{}));
  EXPECT_FALSE(registry.is_registered(99));
  EXPECT_FALSE(registry.fingerprint(99).has_value());
}

TEST(Pki, FingerprintIsStable) {
  Rng rng(5);
  KeyRegistry registry;
  const SecretKey secret = generate_secret(rng);
  const KeyFingerprint fp1 = registry.register_agent(7, secret);
  EXPECT_EQ(fp1, fingerprint_of(secret));
  EXPECT_EQ(registry.fingerprint(7).value(), fp1);
}

TEST(SignedClaim, EncodeDecodeRoundtrip) {
  const Claim claim{ClaimKind::kReceivedLoad, 4, 9, 0.375};
  const Claim back = decode_claim(encode(claim));
  EXPECT_EQ(back, claim);
}

TEST(SignedClaim, DecodeRejectsGarbage) {
  EXPECT_THROW(decode_claim(std::vector<std::uint8_t>{1, 2, 3}),
               dls::codec::DecodeError);
}

TEST(SignedClaim, SignVerifyAndTamper) {
  Rng rng(2);
  KeyRegistry registry;
  const Signer signer = registry.enroll(3, rng);
  const Claim claim{ClaimKind::kEquivalentBid, 3, 1, 1.25};
  SignedClaim sc = make_signed(signer, claim);
  EXPECT_TRUE(verify(registry, sc));
  sc.claim.value = 1.26;  // tamper with the signed value
  EXPECT_FALSE(verify(registry, sc));
}

TEST(SignedClaim, SignatureDoesNotTransferBetweenClaims) {
  Rng rng(2);
  KeyRegistry registry;
  const Signer signer = registry.enroll(3, rng);
  const SignedClaim a =
      make_signed(signer, Claim{ClaimKind::kEquivalentBid, 3, 1, 1.0});
  SignedClaim b = a;
  b.claim.round = 2;  // replay into another round
  EXPECT_FALSE(verify(registry, b));
}

TEST(SignedClaim, ContradictionDetection) {
  Rng rng(2);
  KeyRegistry registry;
  const Signer signer = registry.enroll(3, rng);
  const SignedClaim a =
      make_signed(signer, Claim{ClaimKind::kEquivalentBid, 3, 1, 1.0});
  const SignedClaim b =
      make_signed(signer, Claim{ClaimKind::kEquivalentBid, 3, 1, 2.0});
  const SignedClaim c =
      make_signed(signer, Claim{ClaimKind::kEquivalentBid, 3, 2, 2.0});
  EXPECT_TRUE(contradicts(a, b));
  EXPECT_FALSE(contradicts(a, a));
  EXPECT_FALSE(contradicts(a, c));  // different rounds don't contradict
}

TEST(SignedClaim, ForgeryWithoutKeyFails) {
  Rng rng(2);
  KeyRegistry registry;
  registry.enroll(1, rng);
  const Signer mallory = registry.enroll(2, rng);
  // Mallory signs with her key but labels the claim as P1's.
  SignedClaim forged =
      make_signed(mallory, Claim{ClaimKind::kEquivalentBid, 1, 1, 0.5});
  forged.signer = 1;
  EXPECT_FALSE(verify(registry, forged));
}

TEST(ClaimKind, Names) {
  EXPECT_EQ(to_string(ClaimKind::kEquivalentBid), "equivalent-bid");
  EXPECT_EQ(to_string(ClaimKind::kMeteredRate), "metered-rate");
}

}  // namespace
