// Deterministic-replay tests: running the protocol twice with the same
// seed must produce semantically identical traces and identical metric
// snapshots. The logical clock replaces wall time, the sink is drained
// between runs, and events are compared field by field — including
// timestamps, which the logical clock makes reproducible.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "agents/agent.hpp"
#include "net/networks.hpp"
#include "obs/obs.hpp"
#include "protocol/recovery.hpp"
#include "protocol/runner.hpp"
#include "sim/faults.hpp"

namespace {

using dls::agents::Behavior;
using dls::agents::Population;
using dls::agents::StrategicAgent;
using dls::net::LinearNetwork;
using dls::obs::MetricsRegistry;
using dls::obs::SpanEvent;
using dls::obs::TraceSink;
using dls::protocol::FaultToleranceOptions;
using dls::protocol::ProtocolOptions;

class ObsReplayTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override {
    TraceSink::global().clear();
    MetricsRegistry::global().reset();
  }
  void TearDown() override {
    dls::obs::set_active(false);
    TraceSink::global().clear();
    MetricsRegistry::global().reset();
    dls::obs::use_steady_clock();
  }
};

/// An m-worker chain with mildly heterogeneous rates.
LinearNetwork chain(std::size_t m) {
  std::vector<double> w, z;
  for (std::size_t i = 0; i <= m; ++i) {
    w.push_back(1.0 + 0.1 * static_cast<double>(i % 5));
  }
  for (std::size_t i = 0; i < m; ++i) {
    z.push_back(0.1 + 0.05 * static_cast<double>(i % 3));
  }
  return LinearNetwork(std::move(w), std::move(z));
}

Population truthful(const LinearNetwork& net) {
  std::vector<StrategicAgent> agents;
  for (std::size_t i = 1; i < net.size(); ++i) {
    agents.push_back(StrategicAgent{i, net.w(i), Behavior::truthful()});
  }
  return Population(std::move(agents));
}

/// Everything a replay must reproduce, timestamps included (the logical
/// clock is reset before each run, so matching tick sequences are part
/// of the determinism claim).
void expect_identical(const std::vector<SpanEvent>& a,
                      const std::vector<SpanEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("event " + std::to_string(i) + " (" + a[i].name + ")");
    EXPECT_STREQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].start_ns, b[i].start_ns);
    EXPECT_EQ(a[i].end_ns, b[i].end_ns);
    EXPECT_EQ(a[i].seq, b[i].seq);
    EXPECT_EQ(a[i].thread, b[i].thread);
    EXPECT_EQ(a[i].depth, b[i].depth);
    EXPECT_EQ(a[i].track, b[i].track);
    EXPECT_EQ(a[i].args, b[i].args);
  }
}

struct TracedRun {
  std::vector<SpanEvent> events;
  std::string metrics_json;
};

template <typename Fn>
TracedRun traced(Fn&& run) {
  dls::obs::use_logical_clock();
  TraceSink::global().clear();
  MetricsRegistry::global().reset();
  dls::obs::set_active(true);
  run();
  dls::obs::set_active(false);
  TracedRun out;
  out.events = TraceSink::global().drain();
  out.metrics_json = MetricsRegistry::global().snapshot().to_json();
  return out;
}

TEST_P(ObsReplayTest, ProtocolRunReplaysIdentically) {
  const std::size_t m = GetParam();
  const LinearNetwork net = chain(m);
  const Population pop = truthful(net);
  ProtocolOptions options;
  options.seed = 1234;

  const auto run = [&] {
    const auto report = dls::protocol::run_protocol(net, pop, options);
    ASSERT_FALSE(report.aborted);
  };
  const TracedRun first = traced(run);
  const TracedRun second = traced(run);

  ASSERT_FALSE(first.events.empty());
  expect_identical(first.events, second.events);
  EXPECT_EQ(first.metrics_json, second.metrics_json);
}

TEST_P(ObsReplayTest, FaultyProtocolRunReplaysIdentically) {
  const std::size_t m = GetParam();
  const LinearNetwork net = chain(m);
  const Population pop = truthful(net);
  ProtocolOptions options;
  options.seed = 99;

  FaultToleranceOptions ft;
  dls::sim::FaultPlan faults(/*seed=*/7);
  // Crash the last worker partway through its share; with m == 1 the
  // sole worker is the victim.
  faults.crash_at_work(m, 0.5);
  ft.faults = faults;

  const auto run = [&] {
    const auto report =
        dls::protocol::run_protocol_ft(net, pop, options, ft);
    ASSERT_TRUE(report.any_crash);
  };
  const TracedRun first = traced(run);
  const TracedRun second = traced(run);

  ASSERT_FALSE(first.events.empty());
  expect_identical(first.events, second.events);
  EXPECT_EQ(first.metrics_json, second.metrics_json);
}

TEST_P(ObsReplayTest, FaultFreeAndFaultyTracesDiffer) {
  const std::size_t m = GetParam();
  const LinearNetwork net = chain(m);
  const Population pop = truthful(net);
  ProtocolOptions options;
  options.seed = 5;

  FaultToleranceOptions ft;
  dls::sim::FaultPlan faults(/*seed=*/3);
  faults.crash_at_work(m, 0.25);
  ft.faults = faults;

  const TracedRun clean = traced(
      [&] { dls::protocol::run_protocol(net, pop, options); });
  const TracedRun faulty = traced(
      [&] { dls::protocol::run_protocol_ft(net, pop, options, ft); });

  // The fault path must leave a visibly different trace (recovery spans,
  // crash counters) — otherwise the observability layer is lying.
  EXPECT_NE(clean.metrics_json, faulty.metrics_json);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, ObsReplayTest,
                         ::testing::Values<std::size_t>(1, 2, 8, 32));

}  // namespace
