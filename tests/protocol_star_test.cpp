// Tests for the star-network protocol runner.
#include <gtest/gtest.h>

#include "agents/agent.hpp"
#include "common/error.hpp"
#include "net/networks.hpp"
#include "protocol/star_runner.hpp"

namespace {

using dls::agents::Behavior;
using dls::agents::Population;
using dls::agents::StrategicAgent;
using dls::net::StarNetwork;
using dls::protocol::Incident;
using dls::protocol::ProtocolOptions;
using dls::protocol::run_star_protocol;
using dls::protocol::StarRunReport;

StarNetwork test_star() {
  return StarNetwork(1.0, {1.2, 0.8, 1.5}, {0.2, 0.1, 0.3});
}

Population with_behavior(std::size_t index, Behavior behavior) {
  std::vector<StrategicAgent> agents = {
      StrategicAgent{1, 1.2, Behavior::truthful()},
      StrategicAgent{2, 0.8, Behavior::truthful()},
      StrategicAgent{3, 1.5, Behavior::truthful()}};
  if (index >= 1) agents[index - 1].behavior = std::move(behavior);
  return Population(std::move(agents));
}

StarRunReport run(const Population& pop, ProtocolOptions options = {}) {
  return run_star_protocol(test_star(), pop, options);
}

TEST(StarProtocol, HonestRoundMatchesCentralAssessment) {
  const StarRunReport report = run(with_behavior(0, {}));
  EXPECT_FALSE(report.aborted);
  EXPECT_TRUE(report.incidents.empty());
  ASSERT_TRUE(report.execution.has_value());
  for (std::size_t i = 1; i <= 3; ++i) {
    EXPECT_GE(report.workers[i].utility, 0.0) << "worker " << i;
    EXPECT_NEAR(report.workers[i].utility,
                report.assessment.workers[i - 1].utility, 1e-9);
  }
  EXPECT_DOUBLE_EQ(report.workers[0].utility, 0.0);
  EXPECT_NEAR(report.ledger.conservation_residual(), 0.0, 1e-9);
  EXPECT_NEAR(report.makespan, report.assessment.solution.makespan, 1e-9);
}

TEST(StarProtocol, ContradictoryBidsAbortWithAFine) {
  const StarRunReport report = run(with_behavior(2, Behavior::contradictor()));
  EXPECT_TRUE(report.aborted);
  ASSERT_EQ(report.incidents.size(), 1u);
  EXPECT_EQ(report.incidents[0].kind,
            Incident::Kind::kContradictoryMessages);
  EXPECT_EQ(report.incidents[0].accused, 2u);
  EXPECT_TRUE(report.incidents[0].substantiated);
  EXPECT_LT(report.workers[2].utility, 0.0);
}

TEST(StarProtocol, SlowExecutionLowersUtility) {
  const StarRunReport honest = run(with_behavior(0, {}));
  const StarRunReport slow =
      run(with_behavior(1, Behavior::slow_execution(1.6)));
  EXPECT_FALSE(slow.aborted);
  EXPECT_LT(slow.workers[1].utility, honest.workers[1].utility);
  // The realised makespan suffers too (the point of verification).
  EXPECT_GT(slow.makespan, honest.makespan);
}

TEST(StarProtocol, MisreportedBidsNeverBeatTruth) {
  const StarRunReport honest = run(with_behavior(0, {}));
  for (const double f : {0.5, 0.8, 1.3, 2.0}) {
    const Behavior b =
        f < 1.0 ? Behavior::underbid(f) : Behavior::overbid(f);
    for (std::size_t i = 1; i <= 3; ++i) {
      const StarRunReport report = run(with_behavior(i, b));
      EXPECT_LE(report.workers[i].utility,
                honest.workers[i].utility + 1e-9)
          << "worker " << i << " factor " << f;
    }
  }
}

TEST(StarProtocol, OvercaughtOverchargeIsRuinous) {
  ProtocolOptions options;
  options.mechanism.audit_probability = 1.0;
  const StarRunReport honest = run(with_behavior(0, {}), options);
  const StarRunReport cheat =
      run(with_behavior(3, Behavior::overcharger(0.4)), options);
  ASSERT_EQ(cheat.incidents.size(), 1u);
  EXPECT_EQ(cheat.incidents[0].kind, Incident::Kind::kOvercharge);
  EXPECT_NEAR(cheat.workers[3].payment, honest.workers[3].payment, 1e-9);
  EXPECT_LT(cheat.workers[3].utility, 0.0);
}

TEST(StarProtocol, FalseAccusationBackfires) {
  const StarRunReport report =
      run(with_behavior(2, Behavior::false_accuser()));
  EXPECT_FALSE(report.aborted);
  ASSERT_FALSE(report.incidents.empty());
  EXPECT_EQ(report.incidents[0].kind, Incident::Kind::kFalseAccusation);
  EXPECT_FALSE(report.incidents[0].substantiated);
  EXPECT_GT(report.workers[2].fines, 0.0);
}

TEST(StarProtocol, SolutionBonusLostOnCorruption) {
  ProtocolOptions options;
  options.mechanism.solution_bonus_enabled = true;
  options.mechanism.solution_bonus = 0.05;
  const StarRunReport honest = run(with_behavior(0, {}), options);
  const StarRunReport corrupt =
      run(with_behavior(2, Behavior::data_corruptor()), options);
  EXPECT_FALSE(corrupt.solution_found);
  for (std::size_t i = 1; i <= 3; ++i) {
    EXPECT_NEAR(corrupt.workers[i].utility,
                honest.workers[i].utility - 0.05, 1e-9);
  }
}

TEST(StarProtocol, LedgerBalancesInEveryScenario) {
  const std::vector<Behavior> behaviors = {
      Behavior::truthful(),         Behavior::contradictor(),
      Behavior::overcharger(0.2),   Behavior::false_accuser(),
      Behavior::data_corruptor(),   Behavior::slow_execution(1.4),
      Behavior::underbid(0.7),      Behavior::overbid(1.5)};
  ProtocolOptions options;
  options.mechanism.audit_probability = 1.0;
  for (const auto& b : behaviors) {
    const StarRunReport report = run(with_behavior(2, b), options);
    EXPECT_NEAR(report.ledger.conservation_residual(), 0.0, 1e-9) << b.name;
  }
}

TEST(StarProtocol, DeterministicGivenSeed) {
  ProtocolOptions options;
  options.seed = 777;
  const StarRunReport a = run(with_behavior(0, {}), options);
  const StarRunReport b = run(with_behavior(0, {}), options);
  for (std::size_t i = 0; i < a.workers.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.workers[i].utility, b.workers[i].utility);
  }
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(StarProtocol, RejectsChainOnlyBehaviors) {
  EXPECT_THROW(run(with_behavior(1, Behavior::load_shedder(0.3))),
               dls::PreconditionError);
  EXPECT_THROW(run(with_behavior(1, Behavior::miscomputer())),
               dls::PreconditionError);
  EXPECT_THROW(run(with_behavior(1, Behavior::colluding_victim())),
               dls::PreconditionError);
}

TEST(StarProtocol, RejectsMismatchedPopulation) {
  const StarNetwork star(1.0, {1.0}, {0.1});
  EXPECT_THROW(run_star_protocol(star, with_behavior(0, {}), {}),
               dls::PreconditionError);
}

}  // namespace
