// Solve-cache tests: direct LRU semantics (promotion, eviction order,
// capacity-0 disable, counters) plus the property the service stakes
// its correctness on — a cached response is bit-identical to a freshly
// solved one, across random bid vectors and even under a tiny capacity
// that evicts on almost every request.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "codec/bytes.hpp"
#include "common/rng.hpp"
#include "serve/cache.hpp"
#include "serve/client.hpp"
#include "serve/service.hpp"
#include "serve/service_wire.hpp"

namespace {

using dls::codec::Bytes;
using dls::common::Rng;
using dls::serve::ScheduleOptions;
using dls::serve::ScheduleResponse;
using dls::serve::ScheduleStatus;
using dls::serve::SchedulerClient;
using dls::serve::SchedulerService;
using dls::serve::ServiceConfig;
using dls::serve::SolveCache;

Bytes key_of(const char* text) {
  Bytes out;
  for (const char* p = text; *p; ++p) {
    out.push_back(static_cast<std::uint8_t>(*p));
  }
  return out;
}

SolveCache::Value dummy_solution() {
  return std::make_shared<dls::dlt::LinearSolution>();
}

TEST(SolveCacheTest, LookupMissThenHit) {
  SolveCache cache(4);
  const Bytes key = key_of("k1");
  EXPECT_EQ(cache.lookup(key), nullptr);
  const SolveCache::Value value = dummy_solution();
  cache.insert(key, value);
  EXPECT_EQ(cache.lookup(key), value);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SolveCacheTest, EvictsLeastRecentlyUsed) {
  SolveCache cache(2);
  cache.insert(key_of("a"), dummy_solution());
  cache.insert(key_of("b"), dummy_solution());
  // Touch "a" so "b" becomes the LRU entry, then overflow.
  EXPECT_NE(cache.lookup(key_of("a")), nullptr);
  cache.insert(key_of("c"), dummy_solution());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_NE(cache.lookup(key_of("a")), nullptr);  // survived
  EXPECT_EQ(cache.lookup(key_of("b")), nullptr);  // evicted
  EXPECT_NE(cache.lookup(key_of("c")), nullptr);
}

TEST(SolveCacheTest, ReinsertKeepsResidentValue) {
  SolveCache cache(2);
  const SolveCache::Value first = dummy_solution();
  cache.insert(key_of("a"), first);
  cache.insert(key_of("a"), dummy_solution());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.lookup(key_of("a")), first);
}

TEST(SolveCacheTest, CapacityZeroDisables) {
  SolveCache cache(0);
  cache.insert(key_of("a"), dummy_solution());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(key_of("a")), nullptr);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
}

/// Strips the per-call identity, leaving only solver-derived content.
Bytes canonical_body(ScheduleResponse response) {
  response.request_id = 0;
  return dls::serve::encode_schedule_response(response);
}

std::vector<double> random_vector(Rng& rng, std::size_t n, double lo,
                                  double hi) {
  std::vector<double> out(n);
  for (double& x : out) x = rng.uniform(lo, hi);
  return out;
}

/// The property the cache must uphold: for random instances, a response
/// served from cache is byte-identical to one solved fresh.
TEST(SolveCachePropertyTest, CachedEqualsFreshAcrossRandomBids) {
  ServiceConfig cached_config;
  cached_config.cache_capacity = 64;
  SchedulerService cached_service(cached_config);

  ServiceConfig fresh_config;
  fresh_config.cache_capacity = 0;  // every request solved from scratch
  SchedulerService fresh_service(fresh_config);

  SchedulerClient cached(cached_service.connect());
  SchedulerClient fresh(fresh_service.connect());

  Rng rng(20260806);
  ScheduleOptions options;
  options.want_payments = true;
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t n =
        static_cast<std::size_t>(rng.uniform_int(2, 12));
    const auto w = random_vector(rng, n, 0.2, 3.0);
    const auto z = random_vector(rng, n - 1, 0.01, 0.5);

    const ScheduleResponse cold = cached.schedule(w, z, options);
    const ScheduleResponse warm = cached.schedule(w, z, options);
    const ScheduleResponse direct = fresh.schedule(w, z, options);

    ASSERT_EQ(cold.status, ScheduleStatus::kOk);
    EXPECT_FALSE(cold.cache_hit);
    ASSERT_EQ(warm.status, ScheduleStatus::kOk);
    EXPECT_TRUE(warm.cache_hit);

    // cache_hit is diagnostic metadata, not solver output; mask it
    // along with the request id before comparing bytes.
    ScheduleResponse cold_body = cold, warm_body = warm;
    cold_body.cache_hit = warm_body.cache_hit = false;
    EXPECT_EQ(canonical_body(cold_body), canonical_body(warm_body))
        << "cached response diverged from its own cold solve";
    EXPECT_EQ(canonical_body(warm_body), canonical_body(direct))
        << "cached response diverged from an uncached service";
  }
  EXPECT_GT(cached_service.cache().hits(), 0u);
  EXPECT_EQ(fresh_service.cache().size(), 0u);
}

/// Eviction pressure must never change results: with room for only two
/// solutions and six topologies in rotation, nearly every request
/// re-solves — and must still match the first answer bit-for-bit.
TEST(SolveCachePropertyTest, TinyCapacityEvictionNeverChangesResults) {
  ServiceConfig config;
  config.cache_capacity = 2;
  SchedulerService service(config);
  SchedulerClient client(service.connect());

  Rng rng(99);
  std::vector<std::pair<std::vector<double>, std::vector<double>>> topos;
  for (int t = 0; t < 6; ++t) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 8));
    topos.emplace_back(random_vector(rng, n, 0.2, 3.0),
                       random_vector(rng, n - 1, 0.01, 0.5));
  }

  std::map<std::size_t, Bytes> first_seen;
  for (int pass = 0; pass < 3; ++pass) {
    for (std::size_t t = 0; t < topos.size(); ++t) {
      ScheduleResponse response =
          client.schedule(topos[t].first, topos[t].second);
      ASSERT_EQ(response.status, ScheduleStatus::kOk);
      response.cache_hit = false;
      const Bytes body = canonical_body(response);
      const auto [it, inserted] = first_seen.emplace(t, body);
      if (!inserted) {
        EXPECT_EQ(body, it->second)
            << "topology " << t << " changed answers under eviction";
      }
    }
  }
  EXPECT_GT(service.cache().evictions(), 0u);
  EXPECT_LE(service.cache().size(), 2u);
}

}  // namespace
