// Multi-process conformance: fork/exec a real shard_daemon over TCP
// and over a Unix-domain socket, replay the same seeded request
// stream against the daemon and against an in-memory Pipe-backed
// SchedulerService, and assert every response is byte-identical —
// cold pass and cache-warm pass, including payments, an expired
// deadline, and a malformed instance.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "codec/bytes.hpp"
#include "common/rng.hpp"
#include "serve/client.hpp"
#include "serve/service.hpp"
#include "serve/service_wire.hpp"
#include "serve/socket.hpp"

#ifndef DLS_SHARD_DAEMON_BIN
#error "DLS_SHARD_DAEMON_BIN must point at the shard_daemon binary"
#endif

namespace {

using dls::codec::Bytes;
using dls::serve::ScheduleOptions;
using dls::serve::ScheduleResponse;
using dls::serve::SchedulerClient;
using dls::serve::SchedulerService;
using dls::serve::ServiceConfig;

/// A fork/exec'd shard_daemon. Closing our write end of its stdin is
/// the shutdown signal; the destructor escalates to SIGKILL if the
/// daemon does not exit promptly.
class DaemonProcess {
 public:
  explicit DaemonProcess(const std::vector<std::string>& args) {
    int to_child[2];
    int from_child[2];
    if (::pipe(to_child) != 0 || ::pipe(from_child) != 0) {
      error_ = "pipe() failed";
      return;
    }
    pid_ = ::fork();
    if (pid_ < 0) {
      error_ = "fork() failed";
      return;
    }
    if (pid_ == 0) {
      ::dup2(to_child[0], STDIN_FILENO);
      ::dup2(from_child[1], STDOUT_FILENO);
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::close(from_child[0]);
      ::close(from_child[1]);
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(DLS_SHARD_DAEMON_BIN));
      for (const std::string& arg : args) {
        argv.push_back(const_cast<char*>(arg.c_str()));
      }
      argv.push_back(nullptr);
      ::execv(DLS_SHARD_DAEMON_BIN, argv.data());
      ::_exit(127);  // exec failed
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    stdin_fd_ = to_child[1];
    stdout_fd_ = from_child[0];
    // The daemon announces readiness with one "LISTENING <endpoint>"
    // line before accepting.
    std::string line;
    char ch = 0;
    while (::read(stdout_fd_, &ch, 1) == 1 && ch != '\n') {
      line.push_back(ch);
    }
    if (line.rfind("LISTENING ", 0) != 0) {
      error_ = "daemon said: " + line;
      return;
    }
    endpoint_ = line.substr(10);
  }

  ~DaemonProcess() {
    if (stdin_fd_ >= 0) ::close(stdin_fd_);  // EOF = please exit
    if (pid_ > 0) {
      int status = 0;
      for (int i = 0; i < 200; ++i) {  // up to ~2 s of graceful exit
        if (::waitpid(pid_, &status, WNOHANG) == pid_) {
          pid_ = -1;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      if (pid_ > 0) {
        ::kill(pid_, SIGKILL);
        ::waitpid(pid_, &status, 0);
      }
    }
    if (stdout_fd_ >= 0) ::close(stdout_fd_);
  }

  bool ready() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  const std::string& endpoint() const { return endpoint_; }

 private:
  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  std::string endpoint_;
  std::string error_;
};

struct Call {
  std::vector<double> w;
  std::vector<double> z;
  ScheduleOptions options;
};

/// The seeded conformance stream: varied topologies, one payments
/// request, one pre-expired deadline, one infeasible instance.
std::vector<Call> seeded_stream(std::uint64_t seed) {
  dls::common::Rng rng(seed);
  std::vector<Call> calls;
  for (int i = 0; i < 12; ++i) {
    Call call;
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 7));
    call.w.resize(n);
    call.z.resize(n - 1);
    for (double& x : call.w) x = rng.uniform(0.2, 3.0);
    for (double& x : call.z) x = rng.uniform(0.01, 0.5);
    calls.push_back(std::move(call));
  }
  calls[3].options.want_payments = true;
  calls[5].options.deadline_us = 1e-3;  // expired on arrival
  calls[7].w.assign(3, -1.0);           // infeasible: kError both sides
  return calls;
}

/// Replays the stream twice (cold, then cache-warm) and returns every
/// response's exact wire encoding, in order.
std::vector<Bytes> replay(SchedulerClient& client,
                          const std::vector<Call>& calls) {
  std::vector<Bytes> out;
  for (int pass = 0; pass < 2; ++pass) {
    for (const Call& call : calls) {
      const ScheduleResponse response =
          client.schedule(call.w, call.z, call.options);
      out.push_back(dls::serve::encode_schedule_response(response));
    }
  }
  return out;
}

std::string unix_path() {
  return "/tmp/dls_federation_" + std::to_string(::getpid()) + ".sock";
}

TEST(ServeFederationTest, DaemonResponsesAreByteIdenticalToPipePath) {
  const std::vector<Call> calls = seeded_stream(20260809);

  // Ground truth: the in-memory Pipe path against one local service
  // configured like a daemon shard.
  ServiceConfig config;
  config.cache_capacity = 256;
  SchedulerService service(config);
  SchedulerClient pipe_client(service.connect());
  const std::vector<Bytes> expected = replay(pipe_client, calls);
  pipe_client.close();
  service.stop();

  ASSERT_EQ(expected.size(), calls.size() * 2);

  struct Flavor {
    const char* name;
    std::vector<std::string> args;
  };
  const std::vector<Flavor> flavors = {
      {"tcp", {"--listen", "tcp", "--shards", "3"}},
      {"unix", {"--listen", "unix:" + unix_path(), "--shards", "3"}},
  };
  for (const Flavor& flavor : flavors) {
    DaemonProcess daemon(flavor.args);
    ASSERT_TRUE(daemon.ready()) << flavor.name << ": " << daemon.error();
    SchedulerClient client(dls::serve::connect_endpoint(daemon.endpoint()));
    const std::vector<Bytes> got = replay(client, calls);
    ASSERT_EQ(got.size(), expected.size()) << flavor.name;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(got[i], expected[i])
          << flavor.name << ": response " << i << " ("
          << (i < calls.size() ? "cold" : "warm") << " pass) diverged "
          << "from the in-memory Pipe path";
    }
    client.close();
  }
}

TEST(ServeFederationTest, ReplicatedDaemonStillConformsOverTcp) {
  // Same stream through a replicated (R=2) daemon: the quorum layer
  // must not perturb a healthy federation's bytes either.
  const std::vector<Call> calls = seeded_stream(424242);

  ServiceConfig config;
  config.cache_capacity = 256;
  SchedulerService service(config);
  SchedulerClient pipe_client(service.connect());
  const std::vector<Bytes> expected = replay(pipe_client, calls);
  pipe_client.close();
  service.stop();

  DaemonProcess daemon(
      {"--listen", "tcp", "--shards", "3", "--replication", "2"});
  ASSERT_TRUE(daemon.ready()) << daemon.error();
  SchedulerClient client(dls::serve::connect_endpoint(daemon.endpoint()));
  const std::vector<Bytes> got = replay(client, calls);
  ASSERT_EQ(got.size(), expected.size());
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (got[i] != expected[i]) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0u);
  client.close();
}

}  // namespace
