// Cross-module integration tests: solver ↔ simulator ↔ mechanism ↔
// protocol agreement on randomized instances, and repeated-round "market"
// behaviour (truth-telling emerges as the best response).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "agents/agent.hpp"
#include "analysis/experiments.hpp"
#include "common/rng.hpp"
#include "core/dls_lbl.hpp"
#include "core/dls_star.hpp"
#include "dlt/linear.hpp"
#include "net/networks.hpp"
#include "net/tree.hpp"
#include "core/dls_tree.hpp"
#include "protocol/runner.hpp"
#include "protocol/star_runner.hpp"
#include "protocol/tree_runner.hpp"
#include "sim/linear_execution.hpp"

namespace {

using dls::agents::Behavior;
using dls::agents::Population;
using dls::agents::StrategicAgent;
using dls::common::Rng;
using dls::core::MechanismConfig;
using dls::net::LinearNetwork;
using dls::protocol::ProtocolOptions;
using dls::protocol::run_protocol;
using dls::protocol::RunReport;

class RandomizedIntegration : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomizedIntegration, ProtocolAgreesWithCentralMechanism) {
  Rng rng(GetParam());
  const auto m = static_cast<std::size_t>(rng.uniform_int(2, 10));
  const LinearNetwork net = LinearNetwork::random(
      m + 1, rng, dls::analysis::kWLo, dls::analysis::kWHi,
      dls::analysis::kZLo, dls::analysis::kZHi);
  std::vector<StrategicAgent> agents;
  for (std::size_t i = 1; i <= m; ++i) {
    agents.push_back(StrategicAgent{i, net.w(i), Behavior::truthful()});
  }
  const RunReport report =
      run_protocol(net, Population(std::move(agents)), {});
  ASSERT_FALSE(report.aborted);

  std::vector<double> actual(net.processing_times().begin(),
                             net.processing_times().end());
  const auto central =
      dls::core::assess_compliant(net, actual, MechanismConfig{});
  for (std::size_t i = 0; i <= m; ++i) {
    EXPECT_NEAR(report.processors[i].utility,
                central.processors[i].money.utility, 1e-9)
        << "P" << i;
    EXPECT_NEAR(report.processors[i].assigned, central.processors[i].alpha,
                1e-12);
  }
  // The simulated makespan equals the solver's promise (Theorem 2.1 end
  // to end through the event simulator).
  EXPECT_NEAR(report.makespan, central.solution.makespan, 1e-9);
}

TEST_P(RandomizedIntegration, MixedDeviantsAllEndBelowHonest) {
  Rng rng(GetParam() ^ 0xaaaau);
  const std::size_t m = 5;
  const LinearNetwork net = LinearNetwork::random(
      m + 1, rng, dls::analysis::kWLo, dls::analysis::kWHi,
      dls::analysis::kZLo, dls::analysis::kZHi);
  auto make_population = [&](std::size_t deviant, const Behavior& b) {
    std::vector<StrategicAgent> agents;
    for (std::size_t i = 1; i <= m; ++i) {
      agents.push_back(StrategicAgent{
          i, net.w(i), i == deviant ? b : Behavior::truthful()});
    }
    return Population(std::move(agents));
  };
  const RunReport honest =
      run_protocol(net, make_population(0, Behavior::truthful()), {});
  const std::vector<Behavior> deviations = {
      Behavior::underbid(0.5),     Behavior::overbid(2.0),
      Behavior::slow_execution(1.8), Behavior::load_shedder(0.5)};
  for (const Behavior& b : deviations) {
    for (std::size_t deviant = 1; deviant <= m; ++deviant) {
      const RunReport report =
          run_protocol(net, make_population(deviant, b), {});
      EXPECT_LE(report.processors[deviant].utility,
                honest.processors[deviant].utility + 1e-9)
          << b.name << " at P" << deviant;
    }
  }
}

TEST_P(RandomizedIntegration, TreeProtocolAgreesWithCentralMechanism) {
  Rng rng(GetParam() ^ 0x7ee7u);
  const auto n = static_cast<std::size_t>(rng.uniform_int(3, 12));
  const auto tree =
      dls::net::TreeNetwork::random(n, rng, dls::analysis::kWLo,
                                    dls::analysis::kWHi, dls::analysis::kZLo,
                                    dls::analysis::kZHi);
  std::vector<StrategicAgent> agents;
  for (std::size_t v = 1; v < n; ++v) {
    agents.push_back(StrategicAgent{v, tree.w(v), Behavior::truthful()});
  }
  const auto report = dls::protocol::run_tree_protocol(
      tree, Population(std::move(agents)), {});
  ASSERT_FALSE(report.aborted);
  std::vector<double> rates(n);
  for (std::size_t v = 0; v < n; ++v) rates[v] = tree.w(v);
  const auto central = dls::core::assess_dls_tree(
      tree, rates, dls::core::MechanismConfig{});
  for (std::size_t v = 1; v < n; ++v) {
    EXPECT_NEAR(report.nodes[v].utility, central.nodes[v].utility, 1e-9)
        << "node " << v;
    EXPECT_GE(report.nodes[v].utility, -1e-9);
  }
  EXPECT_NEAR(report.ledger.conservation_residual(), 0.0, 1e-9);
}

TEST_P(RandomizedIntegration, TreeProtocolDeviantsNeverProfit) {
  Rng rng(GetParam() ^ 0x1e3fu);
  const auto n = static_cast<std::size_t>(rng.uniform_int(4, 10));
  const auto tree =
      dls::net::TreeNetwork::random(n, rng, dls::analysis::kWLo,
                                    dls::analysis::kWHi, dls::analysis::kZLo,
                                    dls::analysis::kZHi);
  auto population = [&](std::size_t deviant, const Behavior& b) {
    std::vector<StrategicAgent> agents;
    for (std::size_t v = 1; v < n; ++v) {
      agents.push_back(StrategicAgent{
          v, tree.w(v), v == deviant ? b : Behavior::truthful()});
    }
    return Population(std::move(agents));
  };
  dls::protocol::ProtocolOptions options;
  options.mechanism.audit_probability = 1.0;
  const auto honest =
      dls::protocol::run_tree_protocol(tree, population(0, {}), options);
  const std::vector<Behavior> deviations = {
      Behavior::underbid(0.5), Behavior::overbid(2.0),
      Behavior::slow_execution(1.6), Behavior::overcharger(0.3)};
  for (const Behavior& b : deviations) {
    for (std::size_t deviant = 1; deviant < n; ++deviant) {
      const auto report = dls::protocol::run_tree_protocol(
          tree, population(deviant, b), options);
      EXPECT_LE(report.nodes[deviant].utility,
                honest.nodes[deviant].utility + 1e-9)
          << b.name << " at node " << deviant;
    }
  }
}

TEST_P(RandomizedIntegration, StarProtocolAgreesWithCentralMechanism) {
  Rng rng(GetParam() ^ 0x57a7u);
  const auto m = static_cast<std::size_t>(rng.uniform_int(2, 10));
  const auto star = dls::net::StarNetwork::random(
      m, rng, dls::analysis::kWLo, dls::analysis::kWHi, dls::analysis::kZLo,
      dls::analysis::kZHi, true);
  std::vector<StrategicAgent> agents;
  std::vector<double> rates(m);
  for (std::size_t i = 0; i < m; ++i) {
    rates[i] = star.w(i);
    agents.push_back(
        StrategicAgent{i + 1, star.w(i), Behavior::truthful()});
  }
  const auto report = dls::protocol::run_star_protocol(
      star, Population(std::move(agents)), {});
  ASSERT_FALSE(report.aborted);
  const auto central = dls::core::assess_dls_star(
      star, rates, dls::core::MechanismConfig{});
  for (std::size_t i = 0; i < m; ++i) {
    EXPECT_NEAR(report.workers[i + 1].utility, central.workers[i].utility,
                1e-9)
        << "worker " << i;
    EXPECT_GE(report.workers[i + 1].utility, -1e-9);
  }
  EXPECT_NEAR(report.ledger.conservation_residual(), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedIntegration,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

TEST(MarketDynamics, BestResponseConvergesToTruth) {
  // A crude learning loop: one strategic agent tries a grid of bid
  // multipliers each epoch and adopts the best performer. With DLS-LBL
  // it must settle on (and stay at) multiplier 1.
  const LinearNetwork net({1.0, 1.3, 0.9, 1.1}, {0.2, 0.1, 0.3});
  const std::size_t learner = 2;
  double multiplier = 0.5;  // starts out lying aggressively
  const std::vector<double> candidates = {0.5, 0.75, 0.9,  1.0,
                                          1.1, 1.5,  2.0};
  for (int epoch = 0; epoch < 4; ++epoch) {
    double best_u = -1e300;
    double best_mult = multiplier;
    for (const double c : candidates) {
      std::vector<StrategicAgent> agents;
      for (std::size_t i = 1; i < net.size(); ++i) {
        Behavior b = Behavior::truthful();
        if (i == learner) {
          b = c < 1.0 ? Behavior::underbid(c)
                      : (c > 1.0 ? Behavior::overbid(c)
                                 : Behavior::truthful());
        }
        agents.push_back(StrategicAgent{i, net.w(i), b});
      }
      const RunReport report =
          run_protocol(net, Population(std::move(agents)), {});
      const double u = report.processors[learner].utility;
      if (u > best_u) {
        best_u = u;
        best_mult = c;
      }
    }
    multiplier = best_mult;
  }
  EXPECT_DOUBLE_EQ(multiplier, 1.0);
}

TEST(CrossNetwork, ChainAndStarAgreeOnDegenerateShapes) {
  // A 2-processor chain is simultaneously a 1-worker star; the two
  // mechanism implementations must agree on allocation and makespan.
  const LinearNetwork chain({1.0, 2.0}, {0.5});
  const dls::net::StarNetwork star(1.0, {2.0}, {0.5});
  std::vector<double> chain_actual = {1.0, 2.0};
  std::vector<double> star_actual = {2.0};
  const auto lbl =
      dls::core::assess_compliant(chain, chain_actual, MechanismConfig{});
  const auto st =
      dls::core::assess_dls_star(star, star_actual, MechanismConfig{});
  EXPECT_NEAR(lbl.solution.alpha[1], st.solution.alpha[0], 1e-12);
  EXPECT_NEAR(lbl.solution.makespan, st.solution.makespan, 1e-12);
  // Both mechanisms grant the worker a strictly positive utility.
  EXPECT_GT(lbl.processors[1].money.utility, 0.0);
  EXPECT_GT(st.workers[0].utility, 0.0);
}

}  // namespace
