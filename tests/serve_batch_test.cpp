// Dispatch-window batching tests for the SchedulerService: coalesced
// cache-miss solves return responses bit-identical to unbatched ones,
// expired batchmates are refused without blocking the rest of their
// window, duplicate topologies are answered from one lane, payments
// through the batch path match the scalar assessment, and the kShed /
// kDegraded / cache-hit behaviours are unchanged with batching on.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "core/dls_lbl.hpp"
#include "dlt/linear.hpp"
#include "net/networks.hpp"
#include "serve/frame.hpp"
#include "serve/service.hpp"
#include "serve/service_wire.hpp"

namespace {

using dls::serve::Frame;
using dls::serve::FrameType;
using dls::serve::PipeEnd;
using dls::serve::ScheduleRequest;
using dls::serve::ScheduleResponse;
using dls::serve::ScheduleStatus;
using dls::serve::SchedulerService;
using dls::serve::ServiceConfig;
using dls::serve::ServiceStats;

void send_request(PipeEnd& end, const ScheduleRequest& request) {
  dls::serve::write_frame(end, Frame{FrameType::kScheduleRequest,
                                     encode_schedule_request(request)});
}

ScheduleResponse read_response(PipeEnd& end) {
  const std::optional<Frame> frame = dls::serve::read_frame(end);
  EXPECT_TRUE(frame.has_value()) << "connection closed without a response";
  EXPECT_EQ(frame->type, FrameType::kScheduleResponse);
  return dls::serve::decode_schedule_response(frame->payload);
}

ScheduleRequest make_request(std::uint64_t id, double scale,
                             std::size_t chain = 4) {
  ScheduleRequest request;
  request.request_id = id;
  for (std::size_t i = 0; i < chain; ++i) {
    request.w.push_back(scale * (1.0 + 0.1 * static_cast<double>(i)));
  }
  for (std::size_t j = 0; j + 1 < chain; ++j) {
    request.z.push_back(0.1 + 0.01 * static_cast<double>(j));
  }
  return request;
}

void expect_matches_direct_solve(const ScheduleResponse& response,
                                 const ScheduleRequest& request) {
  ASSERT_EQ(response.status, ScheduleStatus::kOk) << response.error;
  const dls::net::LinearNetwork network(request.w, request.z);
  dls::dlt::LinearSolution direct;
  dls::dlt::solve_linear_boundary_into(network, direct, /*want_steps=*/false);
  EXPECT_EQ(response.alpha, direct.alpha);  // bit-exact doubles
  EXPECT_EQ(response.makespan, direct.makespan);
}

/// Queues all `requests` on one paused service, resumes, and returns the
/// responses in admission order.
std::vector<ScheduleResponse> run_window(SchedulerService& service,
                                         PipeEnd& end,
                                         std::vector<ScheduleRequest> requests,
                                         int settle_ms = 50) {
  for (const ScheduleRequest& request : requests) send_request(end, request);
  std::this_thread::sleep_for(std::chrono::milliseconds(settle_ms));
  service.resume();
  std::vector<ScheduleResponse> responses;
  responses.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    responses.push_back(read_response(end));
  }
  return responses;
}

ServiceConfig paused_batching_config() {
  ServiceConfig config;
  config.start_paused = true;
  config.max_batch = 16;
  config.batch_min_lanes = 2;
  return config;
}

TEST(ServeBatchTest, BatchedResponsesBitIdenticalToDirectSolves) {
  SchedulerService service(paused_batching_config());
  PipeEnd end = service.connect();
  std::vector<ScheduleRequest> requests;
  for (std::uint64_t id = 1; id <= 4; ++id) {
    requests.push_back(make_request(id, 0.5 + 0.25 * static_cast<double>(id)));
  }
  const std::vector<ScheduleResponse> responses =
      run_window(service, end, requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(responses[i].request_id, requests[i].request_id);
    EXPECT_FALSE(responses[i].cache_hit);
    expect_matches_direct_solve(responses[i], requests[i]);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.ok, 4u);
  EXPECT_EQ(stats.batched, 4u);
  EXPECT_EQ(stats.batch_groups, 1u);
  EXPECT_EQ(stats.batch_deduped, 0u);
}

TEST(ServeBatchTest, ExpiredBatchmateDoesNotBlockOthers) {
  SchedulerService service(paused_batching_config());
  PipeEnd end = service.connect();
  std::vector<ScheduleRequest> requests;
  requests.push_back(make_request(1, 1.0));
  requests[0].options.deadline_us = 1000.0;  // expires while paused
  requests.push_back(make_request(2, 2.0));
  requests.push_back(make_request(3, 3.0));
  requests.push_back(make_request(4, 4.0));
  const std::vector<ScheduleResponse> responses =
      run_window(service, end, requests);
  EXPECT_EQ(responses[0].request_id, 1u);
  EXPECT_EQ(responses[0].status, ScheduleStatus::kExpired);
  for (std::size_t i = 1; i < responses.size(); ++i) {
    expect_matches_direct_solve(responses[i], requests[i]);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.ok, 3u);
  EXPECT_EQ(stats.batched, 3u);  // the expired request never took a lane
  EXPECT_EQ(stats.batch_groups, 1u);
}

TEST(ServeBatchTest, MixedChainLengthsFormSeparateGroups) {
  SchedulerService service(paused_batching_config());
  PipeEnd end = service.connect();
  std::vector<ScheduleRequest> requests;
  requests.push_back(make_request(1, 1.0, /*chain=*/4));
  requests.push_back(make_request(2, 2.0, /*chain=*/5));
  requests.push_back(make_request(3, 3.0, /*chain=*/4));
  requests.push_back(make_request(4, 4.0, /*chain=*/5));
  const std::vector<ScheduleResponse> responses =
      run_window(service, end, requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    expect_matches_direct_solve(responses[i], requests[i]);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.batched, 4u);
  EXPECT_EQ(stats.batch_groups, 2u);  // one per chain length
}

TEST(ServeBatchTest, DuplicateTopologiesAnsweredFromOneLane) {
  SchedulerService service(paused_batching_config());
  PipeEnd end = service.connect();
  std::vector<ScheduleRequest> requests;
  requests.push_back(make_request(1, 1.5));
  requests.push_back(make_request(2, 1.5));  // same topology as 1
  requests.push_back(make_request(3, 1.5));  // and again
  requests.push_back(make_request(4, 2.5));  // distinct
  const std::vector<ScheduleResponse> responses =
      run_window(service, end, requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(responses[i].request_id, requests[i].request_id);
    expect_matches_direct_solve(responses[i], requests[i]);
  }
  EXPECT_EQ(responses[0].alpha, responses[1].alpha);
  EXPECT_EQ(responses[0].alpha, responses[2].alpha);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.ok, 4u);
  EXPECT_EQ(stats.batched, 4u);
  EXPECT_EQ(stats.batch_groups, 1u);  // two lanes + two aliases
  EXPECT_EQ(stats.batch_deduped, 2u);
}

TEST(ServeBatchTest, PaymentsThroughBatchMatchScalarAssessment) {
  SchedulerService service(paused_batching_config());
  PipeEnd end = service.connect();
  std::vector<ScheduleRequest> requests;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    requests.push_back(make_request(id, 0.8 * static_cast<double>(id)));
    requests.back().options.want_payments = true;
  }
  const std::vector<ScheduleResponse> responses =
      run_window(service, end, requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    expect_matches_direct_solve(responses[i], requests[i]);
    const dls::net::LinearNetwork network(requests[i].w, requests[i].z);
    const dls::core::DlsLblResult direct = dls::core::assess_compliant(
        network, network.processing_times(), dls::core::MechanismConfig{});
    ASSERT_EQ(responses[i].payments.size(), direct.processors.size());
    for (std::size_t j = 0; j < direct.processors.size(); ++j) {
      EXPECT_EQ(responses[i].payments[j],
                direct.processors[j].money.payment);
    }
    EXPECT_EQ(responses[i].total_payment, direct.total_payment);
  }
  EXPECT_EQ(service.stats().batched, 3u);
}

TEST(ServeBatchTest, ShedBehaviourUnchangedWithBatchingOn) {
  ServiceConfig config = paused_batching_config();
  config.queue_capacity = 2;
  SchedulerService service(config);
  PipeEnd end = service.connect();
  for (std::uint64_t id = 1; id <= 3; ++id) {
    send_request(end, make_request(id, static_cast<double>(id)));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // The third request found the queue full and was shed synchronously,
  // before the dispatcher ever ran.
  const ScheduleResponse shed = read_response(end);
  EXPECT_EQ(shed.request_id, 3u);
  EXPECT_EQ(shed.status, ScheduleStatus::kShed);
  service.resume();
  EXPECT_EQ(read_response(end).status, ScheduleStatus::kOk);
  EXPECT_EQ(read_response(end).status, ScheduleStatus::kOk);
  EXPECT_EQ(service.stats().shed, 1u);
}

TEST(ServeBatchTest, BrownoutBehaviourUnchangedWithBatchingOn) {
  ServiceConfig config = paused_batching_config();
  config.brownout_watermark = 1;
  SchedulerService service(config);
  PipeEnd end = service.connect();
  send_request(end, make_request(1, 1.0));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Queue now at the watermark: the second (cache-miss) request is
  // answered kDegraded inline from the reader thread.
  send_request(end, make_request(2, 2.0));
  const ScheduleResponse degraded = read_response(end);
  EXPECT_EQ(degraded.request_id, 2u);
  EXPECT_EQ(degraded.status, ScheduleStatus::kDegraded);
  EXPECT_GT(degraded.retry_after_us, 0.0);
  service.resume();
  EXPECT_EQ(read_response(end).status, ScheduleStatus::kOk);
  EXPECT_EQ(service.stats().degraded, 1u);
}

TEST(ServeBatchTest, WarmCacheHitsBypassTheBatchSolver) {
  SchedulerService service(paused_batching_config());
  PipeEnd end = service.connect();
  const ScheduleRequest request = make_request(1, 1.0);
  // First window: a miss, solved (alone it is an undersized group and
  // takes the classic path).
  std::vector<ScheduleResponse> responses =
      run_window(service, end, {request});
  expect_matches_direct_solve(responses[0], request);
  EXPECT_FALSE(responses[0].cache_hit);
  // Second window: two identical requests, both answered from the cache
  // during classification — no new batch group.
  service.pause();
  ScheduleRequest again = request;
  again.request_id = 2;
  ScheduleRequest thrice = request;
  thrice.request_id = 3;
  responses = run_window(service, end, {again, thrice});
  for (const ScheduleResponse& response : responses) {
    EXPECT_EQ(response.status, ScheduleStatus::kOk);
    EXPECT_TRUE(response.cache_hit);
    EXPECT_EQ(response.alpha, responses[0].alpha);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.ok, 3u);
  EXPECT_EQ(stats.batch_groups, 0u);
  EXPECT_EQ(stats.batched, 0u);
}

TEST(ServeBatchTest, BatchingDisabledLeavesClassicPath) {
  ServiceConfig config = paused_batching_config();
  config.batch_min_lanes = 0;  // off
  SchedulerService service(config);
  PipeEnd end = service.connect();
  std::vector<ScheduleRequest> requests;
  for (std::uint64_t id = 1; id <= 4; ++id) {
    requests.push_back(make_request(id, 0.5 * static_cast<double>(id)));
  }
  const std::vector<ScheduleResponse> responses =
      run_window(service, end, requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    expect_matches_direct_solve(responses[i], requests[i]);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.ok, 4u);
  EXPECT_EQ(stats.batched, 0u);
  EXPECT_EQ(stats.batch_groups, 0u);
}

}  // namespace

