// Tests for the network descriptions.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "net/networks.hpp"

namespace {

using dls::common::Rng;
using dls::InfeasibleError;
using dls::PreconditionError;
using dls::net::BusNetwork;
using dls::net::InteriorLinearNetwork;
using dls::net::LinearNetwork;
using dls::net::StarNetwork;

TEST(LinearNetwork, AccessorsAndSizes) {
  const LinearNetwork net({1.0, 2.0, 3.0}, {0.1, 0.2});
  EXPECT_EQ(net.size(), 3u);
  EXPECT_EQ(net.workers(), 2u);
  EXPECT_DOUBLE_EQ(net.w(0), 1.0);
  EXPECT_DOUBLE_EQ(net.w(2), 3.0);
  EXPECT_DOUBLE_EQ(net.z(1), 0.1);
  EXPECT_DOUBLE_EQ(net.z(2), 0.2);
}

TEST(LinearNetwork, ValidatesShapeAndPositivity) {
  EXPECT_THROW(LinearNetwork({}, {}), PreconditionError);
  EXPECT_THROW(LinearNetwork({1.0, 2.0}, {}), PreconditionError);
  EXPECT_THROW(LinearNetwork({1.0, -2.0}, {0.1}), InfeasibleError);
  EXPECT_THROW(LinearNetwork({1.0, 2.0}, {0.0}), InfeasibleError);
}

TEST(LinearNetwork, IndexBoundsChecked) {
  const LinearNetwork net({1.0, 2.0}, {0.1});
  EXPECT_THROW(net.w(2), PreconditionError);
  EXPECT_THROW(net.z(0), PreconditionError);
  EXPECT_THROW(net.z(2), PreconditionError);
}

TEST(LinearNetwork, WithProcessingTimeIsACopy) {
  const LinearNetwork net({1.0, 2.0}, {0.1});
  const LinearNetwork other = net.with_processing_time(1, 5.0);
  EXPECT_DOUBLE_EQ(net.w(1), 2.0);
  EXPECT_DOUBLE_EQ(other.w(1), 5.0);
  EXPECT_DOUBLE_EQ(other.z(1), 0.1);
}

TEST(LinearNetwork, SuffixDropsPrefix) {
  const LinearNetwork net({1.0, 2.0, 3.0, 4.0}, {0.1, 0.2, 0.3});
  const LinearNetwork tail = net.suffix(2);
  EXPECT_EQ(tail.size(), 2u);
  EXPECT_DOUBLE_EQ(tail.w(0), 3.0);
  EXPECT_DOUBLE_EQ(tail.z(1), 0.3);
}

TEST(LinearNetwork, UniformAndRandomFactories) {
  const LinearNetwork u = LinearNetwork::uniform(5, 2.0, 0.3);
  EXPECT_EQ(u.size(), 5u);
  EXPECT_DOUBLE_EQ(u.w(4), 2.0);
  EXPECT_DOUBLE_EQ(u.z(1), 0.3);

  Rng rng(9);
  const LinearNetwork r = LinearNetwork::random(10, rng, 0.5, 5.0, 0.05, 0.5);
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_GE(r.w(i), 0.5);
    EXPECT_LE(r.w(i), 5.0);
  }
  for (std::size_t j = 1; j < r.size(); ++j) {
    EXPECT_GE(r.z(j), 0.05);
    EXPECT_LE(r.z(j), 0.5);
  }
}

TEST(LinearNetwork, DescribeMentionsEveryRate) {
  const LinearNetwork net({1.5, 2.5}, {0.25});
  const std::string text = net.describe();
  EXPECT_NE(text.find("1.5"), std::string::npos);
  EXPECT_NE(text.find("2.5"), std::string::npos);
  EXPECT_NE(text.find("0.25"), std::string::npos);
}

TEST(InteriorLinearNetwork, ValidatesRootPosition) {
  EXPECT_THROW(InteriorLinearNetwork({1, 2, 3}, {0.1, 0.2}, 0),
               PreconditionError);
  EXPECT_THROW(InteriorLinearNetwork({1, 2, 3}, {0.1, 0.2}, 2),
               PreconditionError);
  EXPECT_NO_THROW(InteriorLinearNetwork({1, 2, 3}, {0.1, 0.2}, 1));
}

TEST(InteriorLinearNetwork, ChainsIncludeRootAndReverseLeft) {
  const InteriorLinearNetwork net({1, 2, 3, 4, 5}, {0.1, 0.2, 0.3, 0.4}, 2);
  const dls::net::LinearNetwork left = net.left_chain();
  ASSERT_EQ(left.size(), 3u);
  EXPECT_DOUBLE_EQ(left.w(0), 3.0);  // root first
  EXPECT_DOUBLE_EQ(left.w(1), 2.0);
  EXPECT_DOUBLE_EQ(left.w(2), 1.0);
  EXPECT_DOUBLE_EQ(left.z(1), 0.2);  // link P2-P1
  EXPECT_DOUBLE_EQ(left.z(2), 0.1);  // link P1-P0
  const dls::net::LinearNetwork right = net.right_chain();
  ASSERT_EQ(right.size(), 3u);
  EXPECT_DOUBLE_EQ(right.w(0), 3.0);
  EXPECT_DOUBLE_EQ(right.w(2), 5.0);
  EXPECT_DOUBLE_EQ(right.z(1), 0.3);
}

TEST(StarNetwork, OrderByLinkSpeedIsStable) {
  const StarNetwork net(1.0, {2.0, 3.0, 4.0}, {0.3, 0.1, 0.3});
  const auto order = net.order_by_link_speed();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);  // fastest link first
  EXPECT_EQ(order[1], 0u);  // ties keep original order
  EXPECT_EQ(order[2], 2u);
}

TEST(StarNetwork, RootComputesFlag) {
  const StarNetwork with_root(1.0, {2.0}, {0.1});
  EXPECT_TRUE(with_root.root_computes());
  const StarNetwork without_root(0.0, {2.0}, {0.1});
  EXPECT_FALSE(without_root.root_computes());
}

TEST(StarNetwork, Validates) {
  EXPECT_THROW(StarNetwork(1.0, {}, {}), PreconditionError);
  EXPECT_THROW(StarNetwork(1.0, {2.0}, {0.1, 0.2}), PreconditionError);
  EXPECT_THROW(StarNetwork(1.0, {-2.0}, {0.1}), InfeasibleError);
}

TEST(BusNetwork, AsStarSharesTheChannel) {
  const BusNetwork bus(1.0, {2.0, 3.0}, 0.25);
  const StarNetwork star = bus.as_star();
  EXPECT_EQ(star.workers(), 2u);
  EXPECT_DOUBLE_EQ(star.z(0), 0.25);
  EXPECT_DOUBLE_EQ(star.z(1), 0.25);
  EXPECT_DOUBLE_EQ(star.root_w(), 1.0);
}

TEST(BusNetwork, Validates) {
  EXPECT_THROW(BusNetwork(1.0, {2.0}, 0.0), PreconditionError);
  EXPECT_THROW(BusNetwork(1.0, {}, 0.1), PreconditionError);
}

}  // namespace
