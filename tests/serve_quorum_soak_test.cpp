// The quorum soak: 3 SchedulerService shards behind a ShardRouter at
// replication R=2, every router→shard link wrapped in a seeded
// ChaosTransport, plus one injected shard kill per seed. The federation
// invariant under test:
//
//   * every kOk answer a client receives is bit-identical to a
//     fault-free solve_linear_boundary_into of the same topology,
//   * every other request ends in a typed refusal
//     (kShed/kDegraded/kExpired/kError) — NEVER a divergent-but-
//     accepted answer, and never a hang (watchdogged),
//   * the injected kill is detected through the heartbeat retry budget
//     (shard_deaths), triggers a consistent-hash rebalance
//     (rebalances), and the survivors keep answering.
//
// 8 seeds; DLS_SERVE_SOAK multiplies the request volume; the CI
// serve-federation job runs this under ASan/UBSan with
// DLS_CHAOS_TRACE_OUT streaming a Chrome trace of the run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "dlt/linear.hpp"
#include "net/networks.hpp"
#include "obs/sink.hpp"
#include "obs/trace_export.hpp"
#include "serve/chaos.hpp"
#include "serve/client.hpp"
#include "serve/router.hpp"
#include "serve/service.hpp"

namespace {

using dls::serve::ChaosConfig;
using dls::serve::ChaosTransport;
using dls::serve::RouterConfig;
using dls::serve::RouterStats;
using dls::serve::ScheduleOptions;
using dls::serve::ScheduleResponse;
using dls::serve::ScheduleStatus;
using dls::serve::SchedulerClient;
using dls::serve::SchedulerService;
using dls::serve::ServiceConfig;
using dls::serve::ShardRouter;
using dls::serve::Transport;
using dls::serve::TransportError;

int soak_multiplier() {
  const char* raw = std::getenv("DLS_SERVE_SOAK");
  if (raw == nullptr) return 1;
  const int parsed = std::atoi(raw);
  return parsed >= 1 ? parsed : 1;
}

/// Aborts the whole process when the soak wedges (same contract as the
/// serve_chaos_soak watchdog): a hang is the failure mode this harness
/// exists to rule out.
class Watchdog {
 public:
  explicit Watchdog(double limit_s) {
    thread_ = std::thread([this, limit_s] {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!cv_.wait_for(lock, std::chrono::duration<double>(limit_s),
                        [this] { return disarmed_; })) {
        std::fprintf(stderr,
                     "serve_quorum_soak watchdog: run exceeded %.0f s — "
                     "a request hung; aborting\n",
                     limit_s);
        std::abort();
      }
    });
  }
  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      disarmed_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool disarmed_ = false;
  std::thread thread_;
};

struct Topology {
  std::vector<double> w;
  std::vector<double> z;
};

std::vector<Topology> random_topologies(std::size_t count,
                                        std::uint64_t seed) {
  dls::common::Rng rng(seed);
  std::vector<Topology> out(count);
  for (Topology& topo : out) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 8));
    topo.w.resize(n);
    topo.z.resize(n - 1);
    for (double& x : topo.w) x = rng.uniform(0.2, 3.0);
    for (double& x : topo.z) x = rng.uniform(0.01, 0.5);
  }
  return out;
}

std::vector<dls::dlt::LinearSolution> reference_solutions(
    const std::vector<Topology>& topos) {
  std::vector<dls::dlt::LinearSolution> out(topos.size());
  for (std::size_t t = 0; t < topos.size(); ++t) {
    const dls::net::LinearNetwork network(topos[t].w, topos[t].z);
    dls::dlt::solve_linear_boundary_into(network, out[t],
                                         /*want_steps=*/false);
  }
  return out;
}

bool bit_identical(const ScheduleResponse& response,
                   const dls::dlt::LinearSolution& expect) {
  if (response.alpha.size() != expect.alpha.size()) return false;
  for (std::size_t j = 0; j < expect.alpha.size(); ++j) {
    if (response.alpha[j] != expect.alpha[j]) return false;
  }
  return response.makespan == expect.makespan;
}

struct SoakTally {
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> answered_ok{0};
  std::atomic<std::uint64_t> answered_refused{0};
  std::atomic<std::uint64_t> bit_identical{0};
  std::atomic<std::uint64_t> divergent_accepted{0};
  // Router-side aggregates, summed over the per-seed federations.
  std::atomic<std::uint64_t> quorum_checked{0};
  std::atomic<std::uint64_t> quorum_agreed{0};
  std::atomic<std::uint64_t> quorum_divergence{0};
  std::atomic<std::uint64_t> shard_deaths{0};
  std::atomic<std::uint64_t> rebalances{0};
};

/// One seed's federation: 3 shards, R=2, chaotic forward links, one
/// shard killed a third of the way in; runs `per_client` requests on
/// each of two concurrent clients, then keeps nudging the router until
/// the kill is confirmed as a death through the retry budget.
void run_seed(std::uint64_t seed, const std::vector<Topology>& topos,
              const std::vector<dls::dlt::LinearSolution>& truth,
              int per_client, SoakTally& tally) {
  constexpr std::size_t kShards = 3;
  constexpr std::size_t kKilled = 1;

  std::vector<std::unique_ptr<SchedulerService>> shards;
  for (std::size_t s = 0; s < kShards; ++s) {
    ServiceConfig config;
    config.cache_capacity = 32;
    config.poison_budget = 64;  // chaos poisons frames all run long
    shards.push_back(std::make_unique<SchedulerService>(config));
  }
  std::atomic<bool> killed{false};

  ChaosConfig chaos;
  chaos.partial_write = 0.1;
  chaos.truncate = 0.05;
  chaos.corrupt = 0.05;
  chaos.delay = 0.1;
  chaos.disconnect = 0.08;
  chaos.duplicate = 0.1;
  chaos.read_corrupt = 0.04;
  chaos.max_delay_us = 100.0;

  std::atomic<std::uint64_t> dials{0};
  RouterConfig config;
  config.shard_count = kShards;
  config.replication = 2;
  // A corrupted request frame is swallowed by the shard as poison (no
  // response ever comes), so the forward deadline must be short.
  config.forward_timeout_s = 0.25;
  config.heartbeat.period = 0.005;
  config.heartbeat.retry_budget = 3;
  config.connect = [&](std::size_t shard) -> std::unique_ptr<Transport> {
    if (shard == kKilled && killed.load(std::memory_order_acquire)) {
      throw TransportError("injected kill: shard is down");
    }
    const std::uint64_t dial =
        dials.fetch_add(1, std::memory_order_relaxed);
    return std::make_unique<ChaosTransport>(
        shards[shard]->connect(), chaos,
        seed * 1000003ull + shard * 7919ull +
            dial * 0x9e3779b97f4a7c15ull);
  };
  ShardRouter router(config);

  const int kill_at = per_client * 2 / 3;  // a third of the total volume
  std::atomic<int> issued{0};
  std::uint64_t seed_requests = 0;

  const auto drive = [&](SchedulerClient& client, std::uint64_t salt,
                         int count) {
    for (int i = 0; i < count; ++i) {
      const int number = issued.fetch_add(1, std::memory_order_relaxed);
      if (number == kill_at) {
        // The injected fault: one shard drops dead mid-run. Future
        // dials refuse first so no probe resurrects it.
        killed.store(true, std::memory_order_release);
        shards[kKilled]->stop();
      }
      const std::size_t t =
          (salt + static_cast<std::size_t>(i)) % topos.size();
      tally.requests.fetch_add(1, std::memory_order_relaxed);
      const ScheduleResponse response =
          client.schedule(topos[t].w, topos[t].z, ScheduleOptions{});
      if (response.status != ScheduleStatus::kOk) {
        tally.answered_refused.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      tally.answered_ok.fetch_add(1, std::memory_order_relaxed);
      if (bit_identical(response, truth[t])) {
        tally.bit_identical.fetch_add(1, std::memory_order_relaxed);
      } else {
        tally.divergent_accepted.fetch_add(1, std::memory_order_relaxed);
        ADD_FAILURE() << "seed " << seed << " request " << number
                      << ": a divergent answer was ACCEPTED";
      }
    }
  };

  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      SchedulerClient client(router.connect());
      drive(client, c * 37ull, per_client);
      client.close();
    });
  }
  for (std::thread& thread : clients) thread.join();
  seed_requests += static_cast<std::uint64_t>(per_client) * 2;

  // The kill is only *confirmed* once retry_budget consecutive forwards
  // to the dead shard fail; keep routing until THAT shard is marked
  // dead (chaos can kill-and-revive healthy shards on its own, so the
  // global death counter is not the right exit condition). Bounded —
  // the watchdog still backstops a true wedge.
  {
    SchedulerClient client(router.connect());
    for (int extra = 0; extra < 200 && router.alive()[kKilled];
         ++extra) {
      const std::size_t t = static_cast<std::size_t>(extra) % topos.size();
      tally.requests.fetch_add(1, std::memory_order_relaxed);
      ++seed_requests;
      const ScheduleResponse response =
          client.schedule(topos[t].w, topos[t].z, ScheduleOptions{});
      if (response.status != ScheduleStatus::kOk) {
        tally.answered_refused.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      tally.answered_ok.fetch_add(1, std::memory_order_relaxed);
      if (bit_identical(response, truth[t])) {
        tally.bit_identical.fetch_add(1, std::memory_order_relaxed);
      } else {
        tally.divergent_accepted.fetch_add(1, std::memory_order_relaxed);
        ADD_FAILURE() << "seed " << seed << ": divergent answer accepted "
                      << "during the death window";
      }
    }
    client.close();
  }

  const RouterStats stats = router.stats();
  // Every well-formed request this seed sent was read by the router.
  EXPECT_EQ(stats.received, seed_requests) << "seed " << seed;
  // The injected kill was detected and the ring rebalanced.
  EXPECT_GE(stats.shard_deaths, 1u) << "seed " << seed;
  EXPECT_GE(stats.rebalances, 1u) << "seed " << seed;
  EXPECT_FALSE(router.alive()[kKilled]) << "seed " << seed;
  // Healthy replication was genuinely exercised before/around the kill.
  EXPECT_GT(stats.quorum_checked + stats.quorum_single, 0u)
      << "seed " << seed;

  tally.quorum_checked.fetch_add(stats.quorum_checked);
  tally.quorum_agreed.fetch_add(stats.quorum_agreed);
  tally.quorum_divergence.fetch_add(stats.quorum_divergence);
  tally.shard_deaths.fetch_add(stats.shard_deaths);
  tally.rebalances.fetch_add(stats.rebalances);

  router.stop();
  for (std::unique_ptr<SchedulerService>& shard : shards) shard->stop();
}

TEST(ServeQuorumSoakTest, KilledShardNeverYieldsDivergentAcceptedAnswers) {
  const int per_client = 24 * soak_multiplier();
  constexpr std::uint64_t kSeeds = 8;
  Watchdog watchdog(240.0 * soak_multiplier());

  const std::vector<Topology> topos = random_topologies(6, 20260809);
  const std::vector<dls::dlt::LinearSolution> truth =
      reference_solutions(topos);

  // Optional in-flight Chrome trace (CI archives it as an artifact).
  std::unique_ptr<std::ofstream> trace_file;
  std::unique_ptr<dls::obs::StreamingChromeTrace> trace;
  if (const char* path = std::getenv("DLS_CHAOS_TRACE_OUT")) {
    dls::obs::set_active(true);
    trace_file = std::make_unique<std::ofstream>(path);
    if (*trace_file) {
      trace =
          std::make_unique<dls::obs::StreamingChromeTrace>(*trace_file);
    }
  }

  SoakTally tally;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    run_seed(seed, topos, truth, per_client, tally);
    if (trace != nullptr) trace->drain_global();
  }

  if (trace != nullptr) {
    const dls::obs::MetricsSnapshot metrics =
        dls::obs::MetricsRegistry::global().snapshot();
    trace->finish(&metrics);
  }

  // Exact accounting: every request landed as kOk or a typed refusal.
  const std::uint64_t total = tally.requests.load();
  EXPECT_EQ(total,
            tally.answered_ok.load() + tally.answered_refused.load());
  // The headline invariant: zero divergent-but-accepted answers — every
  // accepted answer matched the fault-free solve bit for bit.
  EXPECT_EQ(tally.divergent_accepted.load(), 0u);
  EXPECT_EQ(tally.answered_ok.load(), tally.bit_identical.load());
  // The federation kept answering through chaos and a shard death.
  EXPECT_GT(tally.answered_ok.load(), total / 2);
  // Replication cross-checks actually ran and agreed when they did.
  EXPECT_GT(tally.quorum_checked.load(), 0u);
  EXPECT_EQ(tally.quorum_agreed.load(), tally.quorum_checked.load());
  // One injected kill per seed, each detected and rebalanced.
  EXPECT_GE(tally.shard_deaths.load(), kSeeds);
  EXPECT_GE(tally.rebalances.load(), kSeeds);
}

}  // namespace
