// Tests for the double-entry ledger.
#include <gtest/gtest.h>

#include <sstream>

#include "payment/ledger.hpp"

namespace {

using dls::payment::kTreasury;
using dls::payment::Ledger;
using dls::payment::Transfer;
using dls::payment::TransferKind;

TEST(Ledger, OpenAndQueryAccounts) {
  Ledger ledger;
  ledger.open_account(1);
  EXPECT_TRUE(ledger.has_account(1));
  EXPECT_TRUE(ledger.has_account(kTreasury));
  EXPECT_FALSE(ledger.has_account(2));
  EXPECT_DOUBLE_EQ(ledger.balance(1), 0.0);
}

TEST(Ledger, ReopeningIsAnError) {
  Ledger ledger;
  ledger.open_account(1);
  EXPECT_THROW(ledger.open_account(1), dls::PreconditionError);
  EXPECT_THROW(ledger.open_account(kTreasury), dls::PreconditionError);
}

TEST(Ledger, PostMovesMoneyBothWays) {
  Ledger ledger;
  ledger.open_account(1);
  ledger.post({kTreasury, 1, TransferKind::kBonus, 5.0, "bonus"});
  EXPECT_DOUBLE_EQ(ledger.balance(1), 5.0);
  EXPECT_DOUBLE_EQ(ledger.treasury_balance(), -5.0);
  EXPECT_DOUBLE_EQ(ledger.mechanism_outlay(), 5.0);
  ledger.post({1, kTreasury, TransferKind::kFine, 2.0, "fine"});
  EXPECT_DOUBLE_EQ(ledger.balance(1), 3.0);
  EXPECT_DOUBLE_EQ(ledger.treasury_balance(), -3.0);
}

TEST(Ledger, ConservationAlwaysHolds) {
  Ledger ledger;
  ledger.open_account(1);
  ledger.open_account(2);
  ledger.post({kTreasury, 1, TransferKind::kCompensation, 3.25, ""});
  ledger.post({1, 2, TransferKind::kAdjustment, 1.5, ""});
  ledger.post({2, kTreasury, TransferKind::kAuditPenalty, 0.75, ""});
  EXPECT_NEAR(ledger.conservation_residual(), 0.0, 1e-12);
  EXPECT_EQ(ledger.history().size(), 3u);
}

TEST(Ledger, NetOfKindSeparatesFlows) {
  Ledger ledger;
  ledger.open_account(1);
  ledger.post({kTreasury, 1, TransferKind::kBonus, 5.0, ""});
  ledger.post({kTreasury, 1, TransferKind::kReward, 2.0, ""});
  ledger.post({1, kTreasury, TransferKind::kBonus, 1.0, ""});
  EXPECT_DOUBLE_EQ(ledger.net_of_kind(1, TransferKind::kBonus), 4.0);
  EXPECT_DOUBLE_EQ(ledger.net_of_kind(1, TransferKind::kReward), 2.0);
  EXPECT_DOUBLE_EQ(ledger.net_of_kind(1, TransferKind::kFine), 0.0);
}

TEST(Ledger, RejectsBadTransfers) {
  Ledger ledger;
  ledger.open_account(1);
  EXPECT_THROW(
      ledger.post({kTreasury, 99, TransferKind::kBonus, 1.0, ""}),
      dls::PreconditionError);
  EXPECT_THROW(
      ledger.post({kTreasury, 1, TransferKind::kBonus, -1.0, ""}),
      dls::PreconditionError);
  EXPECT_THROW(ledger.balance(99), dls::PreconditionError);
}

TEST(Ledger, PrintMentionsTransfers) {
  Ledger ledger;
  ledger.open_account(3);
  ledger.post({kTreasury, 3, TransferKind::kBonus, 1.5, "hello"});
  std::ostringstream os;
  ledger.print(os);
  EXPECT_NE(os.str().find("bonus"), std::string::npos);
  EXPECT_NE(os.str().find("hello"), std::string::npos);
  EXPECT_NE(os.str().find("P3"), std::string::npos);
}

TEST(TransferKind, Names) {
  EXPECT_EQ(to_string(TransferKind::kFine), "fine");
  EXPECT_EQ(to_string(TransferKind::kSolutionBonus), "solution-bonus");
}

}  // namespace
