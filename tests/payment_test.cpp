// Tests for the double-entry ledger.
#include <gtest/gtest.h>

#include <sstream>

#include "payment/ledger.hpp"

namespace {

using dls::payment::kTreasury;
using dls::payment::Ledger;
using dls::payment::Transfer;
using dls::payment::TransferKind;

TEST(Ledger, OpenAndQueryAccounts) {
  Ledger ledger;
  ledger.open_account(1);
  EXPECT_TRUE(ledger.has_account(1));
  EXPECT_TRUE(ledger.has_account(kTreasury));
  EXPECT_FALSE(ledger.has_account(2));
  EXPECT_DOUBLE_EQ(ledger.balance(1), 0.0);
}

TEST(Ledger, ReopeningIsAnError) {
  Ledger ledger;
  ledger.open_account(1);
  EXPECT_THROW(ledger.open_account(1), dls::PreconditionError);
  EXPECT_THROW(ledger.open_account(kTreasury), dls::PreconditionError);
}

TEST(Ledger, PostMovesMoneyBothWays) {
  Ledger ledger;
  ledger.open_account(1);
  ledger.post({kTreasury, 1, TransferKind::kBonus, 5.0, "bonus"});
  EXPECT_DOUBLE_EQ(ledger.balance(1), 5.0);
  EXPECT_DOUBLE_EQ(ledger.treasury_balance(), -5.0);
  EXPECT_DOUBLE_EQ(ledger.mechanism_outlay(), 5.0);
  ledger.post({1, kTreasury, TransferKind::kFine, 2.0, "fine"});
  EXPECT_DOUBLE_EQ(ledger.balance(1), 3.0);
  EXPECT_DOUBLE_EQ(ledger.treasury_balance(), -3.0);
}

TEST(Ledger, ConservationAlwaysHolds) {
  Ledger ledger;
  ledger.open_account(1);
  ledger.open_account(2);
  ledger.post({kTreasury, 1, TransferKind::kCompensation, 3.25, ""});
  ledger.post({1, 2, TransferKind::kAdjustment, 1.5, ""});
  ledger.post({2, kTreasury, TransferKind::kAuditPenalty, 0.75, ""});
  EXPECT_NEAR(ledger.conservation_residual(), 0.0, 1e-12);
  EXPECT_EQ(ledger.history().size(), 3u);
}

TEST(Ledger, ConservationHoldsThroughAPartiallySettledRound) {
  // The fault-tolerant round splits settlement across several flavours:
  // a crash victim's E_j recompense, survivors' recovery pay, a
  // shedder's fine and the reporter's reward, and the root's
  // reimbursement. Money must be conserved after EVERY leg — a crash
  // mid-settlement may leave any prefix of these on the books.
  Ledger ledger;
  for (int i = 0; i <= 4; ++i) ledger.open_account(static_cast<unsigned>(i));

  ledger.post({kTreasury, 1, TransferKind::kRecompense, 0.37, "crash E_1"});
  EXPECT_NEAR(ledger.conservation_residual(), 0.0, 1e-12);
  ledger.post({kTreasury, 2, TransferKind::kRecompense, 0.12, "recovery"});
  EXPECT_NEAR(ledger.conservation_residual(), 0.0, 1e-12);
  ledger.post({kTreasury, 2, TransferKind::kCompensation, 1.05, "Q_2"});
  EXPECT_NEAR(ledger.conservation_residual(), 0.0, 1e-12);
  ledger.post({3, kTreasury, TransferKind::kFine, 100.0, "shedding"});
  EXPECT_NEAR(ledger.conservation_residual(), 0.0, 1e-12);
  ledger.post({kTreasury, 4, TransferKind::kReward, 100.0, "report"});
  EXPECT_NEAR(ledger.conservation_residual(), 0.0, 1e-12);
  ledger.post({kTreasury, 0, TransferKind::kCompensation, 0.8, "root"});
  EXPECT_NEAR(ledger.conservation_residual(), 0.0, 1e-12);

  // The crashed node's books show recompense only — no fine legs.
  EXPECT_DOUBLE_EQ(ledger.net_of_kind(1, TransferKind::kRecompense), 0.37);
  EXPECT_DOUBLE_EQ(ledger.net_of_kind(1, TransferKind::kFine), 0.0);
  EXPECT_DOUBLE_EQ(ledger.balance(1), 0.37);
  // The survivor's pay splits into E_2 + Q_2 on separate flows.
  EXPECT_DOUBLE_EQ(ledger.net_of_kind(2, TransferKind::kRecompense), 0.12);
  EXPECT_DOUBLE_EQ(ledger.net_of_kind(2, TransferKind::kCompensation), 1.05);
}

TEST(Ledger, NetOfKindSeparatesFlows) {
  Ledger ledger;
  ledger.open_account(1);
  ledger.post({kTreasury, 1, TransferKind::kBonus, 5.0, ""});
  ledger.post({kTreasury, 1, TransferKind::kReward, 2.0, ""});
  ledger.post({1, kTreasury, TransferKind::kBonus, 1.0, ""});
  EXPECT_DOUBLE_EQ(ledger.net_of_kind(1, TransferKind::kBonus), 4.0);
  EXPECT_DOUBLE_EQ(ledger.net_of_kind(1, TransferKind::kReward), 2.0);
  EXPECT_DOUBLE_EQ(ledger.net_of_kind(1, TransferKind::kFine), 0.0);
}

TEST(Ledger, RejectsBadTransfers) {
  Ledger ledger;
  ledger.open_account(1);
  EXPECT_THROW(
      ledger.post({kTreasury, 99, TransferKind::kBonus, 1.0, ""}),
      dls::PreconditionError);
  EXPECT_THROW(
      ledger.post({kTreasury, 1, TransferKind::kBonus, -1.0, ""}),
      dls::PreconditionError);
  EXPECT_THROW(ledger.balance(99), dls::PreconditionError);
}

TEST(Ledger, PrintMentionsTransfers) {
  Ledger ledger;
  ledger.open_account(3);
  ledger.post({kTreasury, 3, TransferKind::kBonus, 1.5, "hello"});
  std::ostringstream os;
  ledger.print(os);
  EXPECT_NE(os.str().find("bonus"), std::string::npos);
  EXPECT_NE(os.str().find("hello"), std::string::npos);
  EXPECT_NE(os.str().find("P3"), std::string::npos);
}

TEST(TransferKind, Names) {
  EXPECT_EQ(to_string(TransferKind::kFine), "fine");
  EXPECT_EQ(to_string(TransferKind::kSolutionBonus), "solution-bonus");
}

}  // namespace
