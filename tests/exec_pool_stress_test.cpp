// Stress tests for exec::ThreadPool aimed at the ThreadSanitizer CI
// job: nested dispatch, work stealing under deliberately skewed load,
// concurrent submitters on the shared global pool, exception delivery
// under contention, and concurrent CounterfactualSolver/Mechanism
// queries. Every assertion doubles as a determinism check — results
// must be bit-identical to a serial reference at any worker count.
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/dls_lbl.hpp"
#include "dlt/counterfactual.hpp"
#include "dlt/linear.hpp"
#include "exec/thread_pool.hpp"
#include "net/networks.hpp"

namespace dls {
namespace {

double churn(std::size_t i) {
  // A few hundred flops of index-dependent work so chunks finish at
  // staggered times and stealing actually happens.
  double x = static_cast<double>(i % 97) + 1.0;
  for (int k = 0; k < 100 + static_cast<int>(i % 7) * 50; ++k) {
    x = x * 1.0000001 + 0.5 / x;
  }
  return x;
}

TEST(ExecPoolStress, NestedParallelForUnderContention) {
  exec::ThreadPool pool(4);
  const std::size_t outer = pool.worker_count() * 4;
  const std::size_t inner = 257;
  for (int round = 0; round < 20; ++round) {
    std::vector<std::vector<double>> out(outer);
    pool.parallel_for(outer, [&](std::size_t i) {
      out[i].assign(inner, 0.0);
      // Nested dispatch from inside a pool body runs inline; it must
      // neither deadlock nor corrupt the outer job's bookkeeping.
      pool.parallel_for(inner,
                        [&, i](std::size_t j) { out[i][j] = churn(i + j); });
    });
    for (std::size_t i = 0; i < outer; ++i) {
      ASSERT_EQ(out[i].size(), inner);
      for (std::size_t j = 0; j < inner; ++j) {
        ASSERT_EQ(out[i][j], churn(i + j)) << "slot " << i << "," << j;
      }
    }
  }
}

TEST(ExecPoolStress, SkewedLoadStealsAndCoversEveryIndex) {
  exec::ThreadPool pool(7);
  const std::size_t count = 20000;
  for (const std::size_t grain : {std::size_t{1}, std::size_t{16}}) {
    std::vector<std::atomic<int>> hits(count);
    std::vector<double> out(count, 0.0);
    exec::ForOptions options;
    options.grain = grain;
    pool.parallel_for(
        count,
        [&](std::size_t i) {
          // The first few indices are ~100x heavier than the rest, so
          // the dealing order guarantees imbalance and forces steals.
          double sink = 0.0;
          const int reps = i < 8 ? 100 : 1;
          for (int r = 0; r < reps; ++r) sink += churn(i);
          if (!std::isfinite(sink)) std::abort();  // keeps the work live
          out[i] = churn(i);
          hits[i].fetch_add(1, std::memory_order_relaxed);
        },
        options);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1)
          << "index " << i << " ran the wrong number of times";
      ASSERT_EQ(out[i], churn(i));
    }
  }
}

TEST(ExecPoolStress, ConcurrentSubmittersShareTheGlobalPool) {
  const std::size_t submitters = 8;
  const std::size_t per_submitter = 30;
  const std::size_t count = 400;
  std::vector<std::vector<double>> results(submitters);
  std::vector<std::thread> threads;
  threads.reserve(submitters);
  for (std::size_t s = 0; s < submitters; ++s) {
    threads.emplace_back([&, s] {
      std::vector<double>& mine = results[s];
      mine.assign(count, 0.0);
      for (std::size_t r = 0; r < per_submitter; ++r) {
        exec::ThreadPool::global().parallel_for(count, [&](std::size_t i) {
          mine[i] = churn(s * count + i);
        });
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (std::size_t s = 0; s < submitters; ++s) {
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(results[s][i], churn(s * count + i));
    }
  }
}

TEST(ExecPoolStress, ExceptionDeliveryUnderContention) {
  exec::ThreadPool pool(6);
  const auto body = [](std::size_t i) {
    if (i == 700 || i == 900 || i >= 1500) {
      throw std::runtime_error("boom at " + std::to_string(i));
    }
    (void)churn(i);
  };
  {
    // Deterministic case first: inline execution runs indices in order,
    // so the lowest throwing index must be the one delivered.
    exec::ForOptions inline_options;
    inline_options.max_workers = 1;
    try {
      pool.parallel_for(2000, body, inline_options);
      FAIL() << "parallel_for must rethrow the body's exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 700");
    }
  }
  for (int round = 0; round < 25; ++round) {
    exec::ForOptions options;
    options.grain = 1;  // chunk begin == index
    try {
      pool.parallel_for(2000, body, options);
      FAIL() << "parallel_for must rethrow the body's exception";
    } catch (const std::runtime_error& e) {
      // Cancellation means only chunks that ran before the first throw
      // are candidates, so the delivered index is racy — but it must be
      // one of the throwing indices (never a mangled or swallowed one).
      const std::string what = e.what();
      ASSERT_EQ(what.rfind("boom at ", 0), 0u) << what;
      const std::size_t idx = std::stoul(what.substr(8));
      EXPECT_TRUE(idx == 700 || idx == 900 || idx >= 1500) << what;
    }
    // The pool must stay fully usable after a cancelled job.
    std::vector<double> out(64, 0.0);
    pool.parallel_for(out.size(),
                      [&](std::size_t i) { out[i] = churn(i); });
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], churn(i));
    }
  }
}

TEST(ExecPoolStress, PoolChurnStartsAndStopsCleanly) {
  for (int round = 0; round < 40; ++round) {
    exec::ThreadPool pool(3);
    std::vector<double> out(128, 0.0);
    pool.parallel_for(out.size(),
                      [&](std::size_t i) { out[i] = churn(i); });
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], churn(i));
    }
  }
}

TEST(ExecPoolStress, ConcurrentCounterfactualQueriesMatchSerial) {
  common::Rng rng(99);
  const net::LinearNetwork network =
      net::LinearNetwork::random(33, rng, 0.2, 5.0, 0.1, 2.0);
  const core::MechanismConfig config;

  // Serial reference: one utility curve per strategic processor.
  const std::size_t points = 40;
  std::vector<std::vector<double>> reference(network.size());
  std::vector<std::vector<double>> bids(network.size());
  {
    core::CounterfactualMechanism serial(
        network, network.processing_times(), config);
    for (std::size_t j = 1; j < network.size(); ++j) {
      bids[j].resize(points);
      reference[j].assign(points, 0.0);
      for (std::size_t k = 0; k < points; ++k) {
        bids[j][k] = network.w(j) * (0.5 + 0.05 * static_cast<double>(k));
      }
      serial.utility_curve(j, bids[j], reference[j]);
    }
  }

  // Concurrent replay: one mechanism (and so one solver) per lane, all
  // lanes hammering the pool at once; answers must match bit-for-bit.
  exec::ThreadPool pool(6);
  const std::size_t lanes = pool.worker_count() * 2;
  std::vector<std::string> failures(lanes);
  pool.parallel_for(lanes, [&](std::size_t lane) {
    core::CounterfactualMechanism mech(network,
                                       network.processing_times(), config);
    std::vector<double> curve(points, 0.0);
    for (std::size_t j = 1; j < network.size(); ++j) {
      mech.utility_curve(j, bids[j], curve);
      for (std::size_t k = 0; k < points; ++k) {
        if (curve[k] != reference[j][k]) {
          failures[lane] = "lane " + std::to_string(lane) + " P" +
                           std::to_string(j) + " point " +
                           std::to_string(k) + " diverged";
          return;
        }
      }
    }
  });
  for (const std::string& failure : failures) {
    EXPECT_TRUE(failure.empty()) << failure;
  }
}

TEST(ExecPoolStress, WorkspaceSolversAreIndependentAcrossThreads) {
  common::Rng rng(123);
  const std::size_t chains = 64;
  std::vector<net::LinearNetwork> networks;
  networks.reserve(chains);
  for (std::size_t c = 0; c < chains; ++c) {
    networks.push_back(
        net::LinearNetwork::random(2 + c % 31, rng, 0.2, 5.0, 0.1, 2.0));
  }
  std::vector<double> serial(chains, 0.0);
  for (std::size_t c = 0; c < chains; ++c) {
    serial[c] = dlt::solve_linear_boundary(networks[c]).makespan;
  }

  exec::ThreadPool pool(5);
  std::vector<double> parallel_result(chains, 0.0);
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for_chunks(
        chains, [&](std::size_t begin, std::size_t end) {
          dlt::LinearSolverWorkspace ws;  // one workspace per chunk
          for (std::size_t c = begin; c < end; ++c) {
            parallel_result[c] =
                dlt::solve_linear_boundary(networks[c], ws).makespan;
          }
        });
    for (std::size_t c = 0; c < chains; ++c) {
      ASSERT_EQ(parallel_result[c], serial[c]) << "chain " << c;
    }
  }
}

}  // namespace
}  // namespace dls
