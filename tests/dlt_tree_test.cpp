// Tests for tree networks and the recursive star-reduction solver. The
// unary tree must agree with the LINEAR BOUNDARY-LINEAR solver and the
// depth-1 tree with the star solver — strong cross-checks between three
// independently-implemented reductions.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dlt/linear.hpp"
#include "dlt/star.hpp"
#include "dlt/tree.hpp"
#include "net/networks.hpp"
#include "net/tree.hpp"

namespace {

using dls::common::Rng;
using dls::dlt::solve_linear_boundary;
using dls::dlt::solve_star;
using dls::dlt::solve_tree;
using dls::dlt::tree_finish_times;
using dls::dlt::TreeSolution;
using dls::net::LinearNetwork;
using dls::net::StarNetwork;
using dls::net::TreeNetwork;

TEST(TreeNetwork, ValidatesStructure) {
  EXPECT_THROW(TreeNetwork({}, {}, {}), dls::PreconditionError);
  // Parent after child violates topological numbering.
  EXPECT_THROW(TreeNetwork({1.0, 1.0}, {1.0, 0.5}, {0, 1}),
               dls::PreconditionError);
  EXPECT_THROW(TreeNetwork({1.0, -1.0}, {1.0, 0.5}, {0, 0}),
               dls::InfeasibleError);
  EXPECT_THROW(TreeNetwork({1.0, 1.0}, {1.0, 0.0}, {0, 0}),
               dls::InfeasibleError);
}

TEST(TreeNetwork, DepthHeightChildren) {
  // Shape:  0 -> {1, 2};  2 -> {3}
  const TreeNetwork tree({1, 1, 1, 1}, {1, 0.1, 0.2, 0.3}, {0, 0, 0, 2});
  EXPECT_EQ(tree.depth(0), 0u);
  EXPECT_EQ(tree.depth(3), 2u);
  EXPECT_EQ(tree.height(), 2u);
  EXPECT_TRUE(tree.is_leaf(1));
  EXPECT_FALSE(tree.is_leaf(2));
  ASSERT_EQ(tree.children(0).size(), 2u);
  EXPECT_EQ(tree.parent(3), 2u);
}

TEST(TreeNetwork, BalancedShape) {
  const TreeNetwork tree = TreeNetwork::balanced(2, 3, 1.0, 0.2);
  EXPECT_EQ(tree.size(), 1u + 2 + 4 + 8);
  EXPECT_EQ(tree.height(), 3u);
  EXPECT_EQ(tree.children(0).size(), 2u);
}

TEST(SolveTree, UnaryTreeMatchesLinearSolver) {
  Rng rng(21);
  for (int rep = 0; rep < 10; ++rep) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 15));
    const LinearNetwork chain =
        LinearNetwork::random(n, rng, 0.5, 5.0, 0.05, 0.5);
    const TreeNetwork tree = TreeNetwork::chain(
        {chain.processing_times().begin(), chain.processing_times().end()},
        {chain.link_times().begin(), chain.link_times().end()});
    const auto linear_sol = solve_linear_boundary(chain);
    const TreeSolution tree_sol = solve_tree(tree);
    EXPECT_NEAR(tree_sol.makespan, linear_sol.makespan, 1e-12);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(tree_sol.alpha[i], linear_sol.alpha[i], 1e-12) << i;
      EXPECT_NEAR(tree_sol.equivalent_w[i], linear_sol.equivalent_w[i],
                  1e-12);
    }
  }
}

TEST(SolveTree, DepthOneTreeMatchesStarSolver) {
  Rng rng(22);
  for (int rep = 0; rep < 10; ++rep) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 10));
    const StarNetwork star =
        StarNetwork::random(m, rng, 0.5, 5.0, 0.05, 0.5, true);
    std::vector<double> worker_w, worker_z;
    for (std::size_t i = 0; i < m; ++i) {
      worker_w.push_back(star.w(i));
      worker_z.push_back(star.z(i));
    }
    const TreeNetwork tree =
        TreeNetwork::star(star.root_w(), worker_w, worker_z);
    const auto star_sol = solve_star(star);
    const TreeSolution tree_sol = solve_tree(tree);
    EXPECT_NEAR(tree_sol.makespan, star_sol.makespan, 1e-12);
    EXPECT_NEAR(tree_sol.alpha[0], star_sol.alpha_root, 1e-12);
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_NEAR(tree_sol.alpha[i + 1], star_sol.alpha[i], 1e-12);
    }
  }
}

TEST(SolveTree, EveryNodeFinishesSimultaneously) {
  Rng rng(23);
  for (int rep = 0; rep < 20; ++rep) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 40));
    const TreeNetwork tree =
        TreeNetwork::random(n, rng, 0.5, 5.0, 0.05, 0.5);
    const TreeSolution sol = solve_tree(tree);
    double total = 0.0;
    for (const double a : sol.alpha) {
      EXPECT_GT(a, 0.0);
      total += a;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
    const std::vector<double> finish = tree_finish_times(tree, sol);
    for (std::size_t v = 0; v < n; ++v) {
      EXPECT_NEAR(finish[v], sol.makespan, 1e-9) << "node " << v;
    }
  }
}

TEST(SolveTree, SubtreeEquivalentsMatchStandaloneSolves) {
  Rng rng(24);
  const TreeNetwork tree = TreeNetwork::random(20, rng, 0.5, 5.0, 0.05, 0.5);
  const TreeSolution sol = solve_tree(tree);
  // ρ of a leaf is its own rate; ρ of the root is the makespan.
  for (std::size_t v = 0; v < tree.size(); ++v) {
    if (tree.is_leaf(v)) {
      EXPECT_DOUBLE_EQ(sol.equivalent_w[v], tree.w(v));
    }
  }
  EXPECT_DOUBLE_EQ(sol.equivalent_w[0], sol.makespan);
}

TEST(SolveTree, FlatterTreesAreFasterOnUniformHardware) {
  // Same node count, same rates: star beats balanced binary beats chain
  // (shorter relay paths win under store-and-forward).
  const std::size_t nodes = 15;
  const double w = 1.0, z = 0.2;
  const TreeNetwork chain = TreeNetwork::chain(
      std::vector<double>(nodes, w), std::vector<double>(nodes - 1, z));
  const TreeNetwork binary = TreeNetwork::balanced(2, 3, w, z);  // 15 nodes
  const TreeNetwork star = TreeNetwork::star(
      w, std::vector<double>(nodes - 1, w), std::vector<double>(nodes - 1, z));
  const double t_chain = solve_tree(chain).makespan;
  const double t_binary = solve_tree(binary).makespan;
  const double t_star = solve_tree(star).makespan;
  EXPECT_LT(t_star, t_binary);
  EXPECT_LT(t_binary, t_chain);
}

TEST(SolveTree, SlowerNodeGetsLessLoad) {
  Rng rng(25);
  const TreeNetwork tree = TreeNetwork::random(12, rng, 0.5, 5.0, 0.05, 0.5);
  const TreeSolution before = solve_tree(tree);
  for (std::size_t v = 0; v < tree.size(); ++v) {
    std::vector<double> w(tree.size()), z(tree.size(), 1.0);
    std::vector<std::size_t> parent(tree.size(), 0);
    for (std::size_t i = 0; i < tree.size(); ++i) {
      w[i] = i == v ? tree.w(i) * 2.0 : tree.w(i);
      if (i >= 1) {
        z[i] = tree.z(i);
        parent[i] = tree.parent(i);
      }
    }
    const TreeSolution after =
        solve_tree(TreeNetwork(std::move(w), std::move(z), std::move(parent)));
    EXPECT_LT(after.alpha[v], before.alpha[v]) << "node " << v;
    EXPECT_GE(after.makespan, before.makespan - 1e-12);
  }
}

}  // namespace
