// Unit tests for src/obs/: spans, the trace sink, the metrics registry
// and the exporters. Everything here runs single-threaded; the
// concurrent paths are covered by obs_stress_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "obs/trace_export.hpp"

namespace {

using dls::obs::MetricsRegistry;
using dls::obs::MetricsSnapshot;
using dls::obs::Span;
using dls::obs::SpanEvent;
using dls::obs::Track;
using dls::obs::TraceSink;

/// Every test starts from a clean slate: logical clock at zero, empty
/// sink, zeroed metrics, collection on.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dls::obs::use_logical_clock();
    TraceSink::global().clear();
    MetricsRegistry::global().reset();
    dls::obs::set_active(true);
  }
  void TearDown() override {
    dls::obs::set_active(false);
    TraceSink::global().clear();
    MetricsRegistry::global().reset();
    dls::obs::use_steady_clock();
  }
};

TEST_F(ObsTest, SpanRecordsNameDepthAndOrder) {
  {
    Span outer("outer");
    {
      Span inner("inner");
    }
  }
  const std::vector<SpanEvent> events = TraceSink::global().drain();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes first, so it drains first within the thread.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0u);
  EXPECT_LE(events[1].start_ns, events[0].start_ns);
  EXPECT_GE(events[1].end_ns, events[0].end_ns);
}

TEST_F(ObsTest, InactiveSinkRecordsNothing) {
  dls::obs::set_active(false);
  {
    Span span("ignored");
    EXPECT_FALSE(span.live());
  }
  MetricsRegistry::global().counter("ignored.counter").add();
  EXPECT_TRUE(TraceSink::global().drain().empty());
  EXPECT_EQ(MetricsRegistry::global().snapshot().counters.count(
                "ignored.counter"),
            1u);  // registered by the lookup...
  EXPECT_EQ(
      MetricsRegistry::global().snapshot().counters.at("ignored.counter"),
      0u);  // ...but never incremented
}

TEST_F(ObsTest, LogicalClockTicksDeterministically) {
  {
    Span a("a");
  }
  {
    Span b("b");
  }
  const std::vector<SpanEvent> events = TraceSink::global().drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].start_ns, 0u);
  EXPECT_EQ(events[0].end_ns, 1u);
  EXPECT_EQ(events[1].start_ns, 2u);
  EXPECT_EQ(events[1].end_ns, 3u);
}

TEST_F(ObsTest, DrainResetsSequenceSpace) {
  {
    Span a("a");
  }
  const std::vector<SpanEvent> first = TraceSink::global().drain();
  {
    Span a("a");
  }
  const std::vector<SpanEvent> second = TraceSink::global().drain();
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(first[0].seq, second[0].seq);
  EXPECT_EQ(first[0].thread, second[0].thread);
}

TEST_F(ObsTest, ChunkSealingSurvivesManyEvents) {
  constexpr int kEvents = 1000;  // > kFlushThreshold, forces sealed chunks
  for (int i = 0; i < kEvents; ++i) {
    Span s("bulk");
  }
  const std::vector<SpanEvent> events = TraceSink::global().drain();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kEvents));
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);  // canonical order restored after LIFO
  }
}

TEST_F(ObsTest, SimulationTrackKeepsCallerLane) {
  dls::obs::record_span("sim.compute", 10, 20, Track::kSimulation,
                        /*thread=*/7);
  const std::vector<SpanEvent> events = TraceSink::global().drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].thread, 7u);
  EXPECT_EQ(events[0].track, Track::kSimulation);
}

TEST_F(ObsTest, CounterGaugeHistogramRoundTrip) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("c").add(3);
  reg.counter("c").add();
  reg.gauge("g").set(2.5);
  reg.gauge("g").max(1.0);  // smaller: must not lower the value
  auto& h = reg.histogram("h", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(100.0);

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("c"), 4u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 2.5);
  const auto& hs = snap.histograms.at("h");
  ASSERT_EQ(hs.counts.size(), 3u);
  EXPECT_EQ(hs.counts[0], 1u);
  EXPECT_EQ(hs.counts[1], 1u);
  EXPECT_EQ(hs.counts[2], 1u);  // overflow bucket
  EXPECT_EQ(hs.count, 3u);
  EXPECT_DOUBLE_EQ(hs.sum, 105.5);
}

TEST_F(ObsTest, RegistryResetKeepsRegistrationsAndCachedRefs) {
  MetricsRegistry& reg = MetricsRegistry::global();
  auto& c = reg.counter("persistent");
  c.add(5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);  // the cached reference must still be usable
  EXPECT_EQ(reg.snapshot().counters.at("persistent"), 2u);
}

TEST_F(ObsTest, MetricMacrosUpdateTheGlobalRegistry) {
  DLS_COUNT("macro.counter");
  DLS_COUNT("macro.counter", 4);
  DLS_GAUGE_SET("macro.gauge", 1.25);
  DLS_GAUGE_MAX("macro.gauge", 9.0);
  DLS_OBSERVE("macro.hist", 3.0, {1.0, 5.0});
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counters.at("macro.counter"), 5u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("macro.gauge"), 9.0);
  EXPECT_EQ(snap.histograms.at("macro.hist").count, 1u);
}

TEST_F(ObsTest, SnapshotJsonIsDeterministicAndSorted) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("zz").add(1);
  reg.counter("aa").add(2);
  const std::string a = reg.snapshot().to_json();
  const std::string b = reg.snapshot().to_json();
  EXPECT_EQ(a, b);
  EXPECT_LT(a.find("\"aa\""), a.find("\"zz\""));
}

TEST_F(ObsTest, ChromeTraceExportHasMetadataAndCompleteEvents) {
  {
    Span s("solve.reduce", R"({"m":3})");
  }
  dls::obs::record_span("sim.compute", 0, 1000, Track::kSimulation, 2);
  const std::vector<SpanEvent> events = TraceSink::global().drain();
  const MetricsSnapshot metrics = MetricsRegistry::global().snapshot();
  std::ostringstream out;
  dls::obs::write_chrome_trace(out, events, &metrics);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"runtime\""), std::string::npos);
  EXPECT_NE(json.find("\"simulation\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"solve.reduce\""), std::string::npos);
  EXPECT_NE(json.find("{\"m\":3}"), std::string::npos);
  EXPECT_NE(json.find("\"otherData\""), std::string::npos);
}

TEST_F(ObsTest, StreamingChromeTraceMatchesBatchWriterEventForEvent) {
  {
    Span s("solve.reduce", R"({"m":3})");
  }
  dls::obs::record_span("sim.compute", 0, 1000, Track::kSimulation, 2);
  const std::vector<SpanEvent> events = TraceSink::global().drain();
  const MetricsSnapshot metrics = MetricsRegistry::global().snapshot();

  std::ostringstream batch;
  dls::obs::write_chrome_trace(batch, events, &metrics);

  // Feed the same events through the streaming writer in two batches.
  std::ostringstream streamed;
  {
    dls::obs::StreamingChromeTrace trace(streamed);
    trace.append(std::span(events).first(1));
    trace.append(std::span(events).subspan(1));
    trace.finish(&metrics);
  }
  const std::string json = streamed.str();

  // Every event line the batch writer emits appears verbatim (the two
  // writers share the line formatter), and the stream is valid JSON with
  // the same metadata and metrics attachments.
  for (const SpanEvent& e : events) {
    const std::string needle = "\"name\":\"" + std::string(e.name) + "\"";
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"runtime\""), std::string::npos);
  EXPECT_NE(json.find("\"simulation\""), std::string::npos);
  EXPECT_NE(json.find("\"otherData\""), std::string::npos);
  EXPECT_EQ(json.back(), '\n');

  // Both writers emit the identical set of event lines: strip the
  // wrappers and compare the sorted line multisets.
  const auto event_lines = [](const std::string& text) {
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("{\"name\":", 0) == 0 ||
          line.rfind("{\"ph\":\"M\"", 0) == 0) {
        if (!line.empty() && line.back() == ',') line.pop_back();
        lines.push_back(line);
      }
    }
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  EXPECT_EQ(event_lines(batch.str()), event_lines(json));
}

TEST_F(ObsTest, StreamingChromeTraceDestructorClosesTheJson) {
  std::ostringstream out;
  { dls::obs::StreamingChromeTrace trace(out); }
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(json.find("\"otherData\""), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
}

TEST_F(ObsTest, JsonlExportOneLinePerEvent) {
  {
    Span a("a");
  }
  {
    Span b("b");
  }
  const std::vector<SpanEvent> events = TraceSink::global().drain();
  std::ostringstream out;
  dls::obs::write_jsonl(out, events);
  const std::string text = out.str();
  std::size_t lines = 0;
  for (const char c : text) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(text.find("\"name\":\"a\""), std::string::npos);
  EXPECT_NE(text.find("\"start_ns\":"), std::string::npos);
}

TEST_F(ObsTest, SummaryTableAggregatesPerName) {
  for (int i = 0; i < 3; ++i) {
    Span s("repeat");
  }
  const std::vector<SpanEvent> events = TraceSink::global().drain();
  std::ostringstream out;
  dls::obs::dump_summary(out, events, MetricsRegistry::global().snapshot());
  const std::string text = out.str();
  EXPECT_NE(text.find("repeat"), std::string::npos);
  EXPECT_NE(text.find("spans (3 events):"), std::string::npos);
}

TEST_F(ObsTest, CompiledLevelIsConsistent) {
  EXPECT_TRUE(dls::obs::compiled(0));
  EXPECT_TRUE(dls::obs::compiled(DLS_OBS_LEVEL));
  EXPECT_FALSE(dls::obs::compiled(DLS_OBS_LEVEL + 1));
}

}  // namespace
