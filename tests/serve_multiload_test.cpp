// End-to-end tests for multi-load scheduling through the service: kOk
// answers match MultiLoadSolver bit-for-bit, per-load payments match
// assess_loads, mixed single-/multi-load traffic shares one FIFO
// admission queue (responses per connection arrive in admission order,
// and single-load responses stay byte-identical with multi traffic
// interleaved), deadline-expired multi requests take no installment,
// a full queue sheds, brown-out degrades with a retry hint, and stop()
// answers every queued multi-load request.
#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <optional>
#include <thread>
#include <vector>

#include "dlt/linear.hpp"
#include "multiload/payments.hpp"
#include "multiload/solver.hpp"
#include "net/networks.hpp"
#include "serve/client.hpp"
#include "serve/frame.hpp"
#include "serve/multiload_wire.hpp"
#include "serve/service.hpp"
#include "serve/service_wire.hpp"

namespace {

using dls::serve::Frame;
using dls::serve::FrameType;
using dls::serve::MultiLoadItem;
using dls::serve::MultiScheduleRequest;
using dls::serve::MultiScheduleResponse;
using dls::serve::PipeEnd;
using dls::serve::ScheduleRequest;
using dls::serve::ScheduleResponse;
using dls::serve::ScheduleStatus;
using dls::serve::SchedulerClient;
using dls::serve::SchedulerService;
using dls::serve::ServiceConfig;
using dls::serve::ServiceStats;

const std::vector<double> kW = {1.0, 1.2, 0.9, 1.1};
const std::vector<double> kZ = {0.15, 0.1, 0.2};

MultiScheduleRequest make_multi(std::uint64_t request_id = 0) {
  MultiScheduleRequest request;
  request.request_id = request_id;
  request.w = kW;
  request.z = kZ;
  request.loads = {MultiLoadItem{1, 1.0, 0.0, 0.0},
                   MultiLoadItem{2, 2.0, 0.5, 0.0},
                   MultiLoadItem{3, 0.5, 1.0, 0.0}};
  request.installments = 2;
  request.ingress_z = 0.1;
  return request;
}

std::vector<dls::multiload::LoadSpec> specs_of(
    const MultiScheduleRequest& request) {
  std::vector<dls::multiload::LoadSpec> specs;
  for (const MultiLoadItem& item : request.loads) {
    specs.push_back(dls::multiload::LoadSpec{item.load_id, item.size,
                                             item.release, item.deadline});
  }
  return specs;
}

dls::multiload::MultiLoadConfig config_of(const MultiScheduleRequest& request) {
  dls::multiload::MultiLoadConfig config;
  config.policy =
      static_cast<dls::multiload::DispatchPolicy>(request.policy);
  config.installments_per_load = request.installments;
  config.ingress_z = request.ingress_z;
  return config;
}

void send_multi(PipeEnd& end, const MultiScheduleRequest& request) {
  dls::serve::write_frame(end,
                          Frame{FrameType::kMultiScheduleRequest,
                                encode_multi_schedule_request(request)});
}

MultiScheduleResponse read_multi(PipeEnd& end) {
  const std::optional<Frame> frame = dls::serve::read_frame(end);
  EXPECT_TRUE(frame.has_value()) << "connection closed without a response";
  EXPECT_EQ(frame->type, FrameType::kMultiScheduleResponse);
  return dls::serve::decode_multi_schedule_response(frame->payload);
}

TEST(ServeMultiLoadTest, OkResponseMatchesDirectSolverExactly) {
  SchedulerService service(ServiceConfig{});
  SchedulerClient client(service.connect());
  const MultiScheduleRequest request = make_multi();
  const MultiScheduleResponse response = client.schedule_multi(request);
  ASSERT_EQ(response.status, ScheduleStatus::kOk);

  const dls::net::LinearNetwork network(kW, kZ);
  dls::multiload::MultiLoadSolver solver(network);
  const dls::multiload::MultiLoadSchedule direct =
      solver.solve(specs_of(request), config_of(request));
  EXPECT_EQ(response.makespan, direct.makespan);  // bit-exact doubles
  EXPECT_EQ(response.serialized_makespan, direct.serialized_makespan);
  ASSERT_EQ(response.loads.size(), direct.loads.size());
  for (std::size_t i = 0; i < direct.loads.size(); ++i) {
    EXPECT_EQ(response.loads[i].load_id, direct.loads[i].spec.id);
    EXPECT_EQ(response.loads[i].start, direct.loads[i].start);
    EXPECT_EQ(response.loads[i].completion, direct.loads[i].completion);
    EXPECT_EQ(response.loads[i].deadline_met, direct.loads[i].deadline_met);
  }
}

TEST(ServeMultiLoadTest, PaymentsMatchAssessLoads) {
  SchedulerService service(ServiceConfig{});
  SchedulerClient client(service.connect());
  MultiScheduleRequest request = make_multi();
  request.want_payments = true;
  const MultiScheduleResponse response = client.schedule_multi(request);
  ASSERT_EQ(response.status, ScheduleStatus::kOk);

  const dls::net::LinearNetwork network(kW, kZ);
  const dls::multiload::MultiLoadAssessment direct =
      dls::multiload::assess_loads(network, network.processing_times(),
                                   specs_of(request),
                                   dls::core::MechanismConfig{});
  ASSERT_EQ(response.loads.size(), direct.loads.size());
  for (std::size_t i = 0; i < direct.loads.size(); ++i) {
    EXPECT_EQ(response.loads[i].total_payment, direct.loads[i].total_payment);
  }
  EXPECT_EQ(response.total_payment, direct.total_payment);
}

TEST(ServeMultiLoadTest, MixedTrafficAnsweredInAdmissionOrder) {
  ServiceConfig config;
  config.start_paused = true;
  SchedulerService service(config);
  PipeEnd end = service.connect();

  // single, multi, single — one connection, admitted FIFO while the
  // dispatcher is held, answered in exactly that order on resume.
  ScheduleRequest first;
  first.request_id = 1;
  first.w = kW;
  first.z = kZ;
  dls::serve::write_frame(
      end, Frame{FrameType::kScheduleRequest, encode_schedule_request(first)});
  send_multi(end, make_multi(2));
  ScheduleRequest third = first;
  third.request_id = 3;
  dls::serve::write_frame(
      end, Frame{FrameType::kScheduleRequest, encode_schedule_request(third)});

  // Wait for all three to be admitted before releasing the dispatcher,
  // so they land in one dispatch window deterministically.
  while (service.stats().admitted < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.resume();

  const std::optional<Frame> f1 = dls::serve::read_frame(end);
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(f1->type, FrameType::kScheduleResponse);
  const ScheduleResponse r1 = dls::serve::decode_schedule_response(f1->payload);
  EXPECT_EQ(r1.request_id, 1u);
  EXPECT_EQ(r1.status, ScheduleStatus::kOk);

  const std::optional<Frame> f2 = dls::serve::read_frame(end);
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f2->type, FrameType::kMultiScheduleResponse);
  const MultiScheduleResponse r2 =
      dls::serve::decode_multi_schedule_response(f2->payload);
  EXPECT_EQ(r2.request_id, 2u);
  EXPECT_EQ(r2.status, ScheduleStatus::kOk);

  const std::optional<Frame> f3 = dls::serve::read_frame(end);
  ASSERT_TRUE(f3.has_value());
  EXPECT_EQ(f3->type, FrameType::kScheduleResponse);
  const ScheduleResponse r3 = dls::serve::decode_schedule_response(f3->payload);
  EXPECT_EQ(r3.request_id, 3u);
  EXPECT_EQ(r3.status, ScheduleStatus::kOk);

  // The single-load answers are byte-identical to a service that never
  // saw multi traffic: reconstruct the expected response from a direct
  // solve and compare encodings.
  const dls::net::LinearNetwork network(kW, kZ);
  dls::dlt::LinearSolution direct;
  dls::dlt::solve_linear_boundary_into(network, direct, /*want_steps=*/false);
  ScheduleResponse expected;
  expected.request_id = 1;
  expected.status = ScheduleStatus::kOk;
  expected.cache_hit = false;
  expected.alpha = direct.alpha;
  expected.makespan = direct.makespan;
  EXPECT_EQ(f1->payload, dls::serve::encode_schedule_response(expected));
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.multi_received, 1u);
  EXPECT_EQ(stats.multi_loads, 3u);
  EXPECT_EQ(stats.ok, 3u);
}

TEST(ServeMultiLoadTest, QueuedMultiPastDeadlineExpiresWithNoInstallment) {
  ServiceConfig config;
  config.start_paused = true;
  SchedulerService service(config);
  PipeEnd end = service.connect();

  MultiScheduleRequest request = make_multi(7);
  request.deadline_us = 1000.0;  // 1 ms
  send_multi(end, request);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service.resume();

  const MultiScheduleResponse response = read_multi(end);
  EXPECT_EQ(response.request_id, 7u);
  EXPECT_EQ(response.status, ScheduleStatus::kExpired);
  EXPECT_TRUE(response.loads.empty());  // not a single installment placed
  EXPECT_EQ(response.makespan, 0.0);
  EXPECT_EQ(service.stats().expired, 1u);
  EXPECT_EQ(service.stats().multi_loads, 0u);
}

TEST(ServeMultiLoadTest, FullQueueShedsMultiImmediately) {
  ServiceConfig config;
  config.start_paused = true;
  config.queue_capacity = 1;
  SchedulerService service(config);
  PipeEnd end = service.connect();

  send_multi(end, make_multi(1));  // occupies the whole queue
  while (service.stats().admitted < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  send_multi(end, make_multi(2));

  const MultiScheduleResponse shed = read_multi(end);
  EXPECT_EQ(shed.request_id, 2u);
  EXPECT_EQ(shed.status, ScheduleStatus::kShed);
  service.resume();
  EXPECT_EQ(read_multi(end).status, ScheduleStatus::kOk);
}

TEST(ServeMultiLoadTest, BrownoutDegradesMultiWithRetryHint) {
  ServiceConfig config;
  config.start_paused = true;
  config.brownout_watermark = 1;
  config.degraded_retry_after_us = 2500.0;
  SchedulerService service(config);
  PipeEnd end = service.connect();

  send_multi(end, make_multi(1));  // fills the queue to the watermark
  while (service.stats().admitted < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  send_multi(end, make_multi(2));

  const MultiScheduleResponse degraded = read_multi(end);
  EXPECT_EQ(degraded.request_id, 2u);
  EXPECT_EQ(degraded.status, ScheduleStatus::kDegraded);
  EXPECT_EQ(degraded.retry_after_us, 2500.0);
  service.resume();
  EXPECT_EQ(read_multi(end).status, ScheduleStatus::kOk);
}

TEST(ServeMultiLoadTest, StopAnswersEveryQueuedMulti) {
  ServiceConfig config;
  config.start_paused = true;
  SchedulerService service(config);
  PipeEnd end = service.connect();

  for (std::uint64_t id = 1; id <= 3; ++id) send_multi(end, make_multi(id));
  while (service.stats().admitted < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.stop();

  for (std::uint64_t id = 1; id <= 3; ++id) {
    const MultiScheduleResponse response = read_multi(end);
    EXPECT_EQ(response.request_id, id);
    EXPECT_EQ(response.status, ScheduleStatus::kError);
  }
  EXPECT_EQ(service.stats().errors, 3u);
}

TEST(ServeMultiLoadTest, PauseResumeStaysDeterministic) {
  ServiceConfig config;
  config.start_paused = true;
  config.max_batch = 1;  // one request per dispatcher wake-up
  SchedulerService service(config);
  PipeEnd end = service.connect();

  // Two pause/resume rounds of interleaved traffic: order within each
  // round is admission order regardless of batching granularity.
  for (int round = 0; round < 2; ++round) {
    const std::uint64_t base = static_cast<std::uint64_t>(round) * 10;
    send_multi(end, make_multi(base + 1));
    ScheduleRequest single;
    single.request_id = base + 2;
    single.w = kW;
    single.z = kZ;
    dls::serve::write_frame(end, Frame{FrameType::kScheduleRequest,
                                       encode_schedule_request(single)});
    while (service.stats().admitted < static_cast<std::uint64_t>(
                                          (round + 1) * 2)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    service.resume();

    const MultiScheduleResponse first = read_multi(end);
    EXPECT_EQ(first.request_id, base + 1);
    EXPECT_EQ(first.status, ScheduleStatus::kOk);
    const std::optional<Frame> frame = dls::serve::read_frame(end);
    ASSERT_TRUE(frame.has_value());
    ASSERT_EQ(frame->type, FrameType::kScheduleResponse);
    const ScheduleResponse second =
        dls::serve::decode_schedule_response(frame->payload);
    EXPECT_EQ(second.request_id, base + 2);
    EXPECT_EQ(second.status, ScheduleStatus::kOk);
    service.pause();
  }
}

TEST(ServeMultiLoadTest, MalformedMultiRequestGetsTypedError) {
  SchedulerService service(ServiceConfig{});
  PipeEnd end = service.connect();
  // A frame whose type promises a multi request but whose payload is a
  // single-load request: the payload magic check refuses it.
  ScheduleRequest single;
  single.request_id = 9;
  single.w = kW;
  single.z = kZ;
  dls::serve::write_frame(end, Frame{FrameType::kMultiScheduleRequest,
                                     encode_schedule_request(single)});
  const MultiScheduleResponse response = read_multi(end);
  EXPECT_EQ(response.status, ScheduleStatus::kError);
  EXPECT_FALSE(response.error.empty());
}

TEST(ServeMultiLoadTest, HostileFramesAreRefusedAndTheServiceSurvives) {
  SchedulerService service(ServiceConfig{});
  PipeEnd end = service.connect();

  // installments=2^32-1 would demand ~10^10 installment objects from
  // the solver; the decoder's cap refuses it before any allocation.
  MultiScheduleRequest hostile = make_multi(77);
  hostile.installments = 0xFFFFFFFFu;
  send_multi(end, hostile);
  const MultiScheduleResponse capped = read_multi(end);
  EXPECT_EQ(capped.status, ScheduleStatus::kError);
  EXPECT_FALSE(capped.error.empty());

  // Non-finite load fields are refused at decode too, never reaching
  // the solver as garbage timestamps.
  MultiScheduleRequest poisoned = make_multi(78);
  poisoned.loads[0].size = std::numeric_limits<double>::quiet_NaN();
  send_multi(end, poisoned);
  const MultiScheduleResponse refused = read_multi(end);
  EXPECT_EQ(refused.status, ScheduleStatus::kError);
  EXPECT_FALSE(refused.error.empty());

  // The session and the dispatcher are both still alive: a well-formed
  // request on the same connection is answered normally.
  send_multi(end, make_multi(79));
  const MultiScheduleResponse ok = read_multi(end);
  EXPECT_EQ(ok.request_id, 79u);
  EXPECT_EQ(ok.status, ScheduleStatus::kOk);
}

TEST(ServeMultiLoadTest, InfeasibleLoadIsATypedError) {
  SchedulerService service(ServiceConfig{});
  SchedulerClient client(service.connect());
  MultiScheduleRequest request = make_multi();
  request.loads[1].size = -1.0;  // decodes fine, fails in the solver
  const MultiScheduleResponse response = client.schedule_multi(request);
  EXPECT_EQ(response.status, ScheduleStatus::kError);
  EXPECT_FALSE(response.error.empty());
}

}  // namespace
