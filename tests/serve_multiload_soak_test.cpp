// Multi-client multi-load soak: several concurrent clients pump
// randomized multi-load batches (mixed with single-load traffic)
// through one service, and every kOk answer must be bit-identical to a
// reference MultiLoadSolver / assess_loads run computed client-side.
// Designed for the TSan CI job (multiload-soak): the single shared
// admission queue, the dispatcher fan-out and the per-session writers
// all race here by construction, so any ordering bug or data race has
// a deterministic oracle to trip over. DLS_SERVE_SOAK multiplies the
// request volume.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "dlt/linear.hpp"
#include "multiload/payments.hpp"
#include "multiload/solver.hpp"
#include "net/networks.hpp"
#include "serve/client.hpp"
#include "serve/multiload_wire.hpp"
#include "serve/service.hpp"

namespace {

using dls::common::Rng;
using dls::serve::MultiLoadItem;
using dls::serve::MultiScheduleRequest;
using dls::serve::MultiScheduleResponse;
using dls::serve::ScheduleResponse;
using dls::serve::ScheduleStatus;
using dls::serve::SchedulerClient;
using dls::serve::SchedulerService;
using dls::serve::ServiceConfig;

int soak_multiplier() {
  const char* raw = std::getenv("DLS_SERVE_SOAK");
  if (raw == nullptr) return 1;
  const int parsed = std::atoi(raw);
  return parsed >= 1 ? parsed : 1;
}

/// Aborts the whole process when the soak wedges; a hang is the failure
/// mode this harness exists to rule out.
class Watchdog {
 public:
  explicit Watchdog(double limit_s) {
    thread_ = std::thread([this, limit_s] {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!cv_.wait_for(lock, std::chrono::duration<double>(limit_s),
                        [this] { return disarmed_; })) {
        std::fprintf(stderr,
                     "serve_multiload_soak watchdog: run exceeded %.0f s — "
                     "a request hung; aborting\n",
                     limit_s);
        std::abort();
      }
    });
  }
  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      disarmed_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool disarmed_ = false;
  std::thread thread_;
};

MultiScheduleRequest random_request(Rng& rng) {
  MultiScheduleRequest request;
  const int m = static_cast<int>(rng.uniform_int(1, 5));
  for (int i = 0; i <= m; ++i) request.w.push_back(rng.uniform(0.5, 2.0));
  for (int i = 0; i < m; ++i) request.z.push_back(rng.uniform(0.05, 0.4));
  const int loads = static_cast<int>(rng.uniform_int(1, 4));
  for (int i = 0; i < loads; ++i) {
    MultiLoadItem item;
    item.load_id = static_cast<std::uint64_t>(i + 1);
    item.size = rng.uniform(0.5, 2.5);
    item.release = rng.uniform(0.0, 1.5);
    item.deadline = rng.uniform_int(0, 1) == 1 ? rng.uniform(1.0, 30.0) : 0.0;
    request.loads.push_back(item);
  }
  request.policy = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
  request.installments = static_cast<std::uint32_t>(rng.uniform_int(1, 3));
  request.ingress_z = rng.uniform_int(0, 1) == 1 ? rng.uniform(0.0, 0.2) : 0.0;
  request.want_payments = rng.uniform_int(0, 3) == 0;
  return request;
}

/// The client-side oracle: re-solves the request locally and demands
/// bit-identical numbers in the service's answer.
void check_against_reference(const MultiScheduleRequest& request,
                             const MultiScheduleResponse& response) {
  ASSERT_EQ(response.status, ScheduleStatus::kOk) << response.error;
  const dls::net::LinearNetwork network(request.w, request.z);
  std::vector<dls::multiload::LoadSpec> specs;
  for (const MultiLoadItem& item : request.loads) {
    specs.push_back(dls::multiload::LoadSpec{item.load_id, item.size,
                                             item.release, item.deadline});
  }
  dls::multiload::MultiLoadConfig config;
  config.policy = static_cast<dls::multiload::DispatchPolicy>(request.policy);
  config.installments_per_load = request.installments;
  config.ingress_z = request.ingress_z;
  dls::multiload::MultiLoadSolver solver(network);
  const dls::multiload::MultiLoadSchedule reference =
      solver.solve(specs, config);

  ASSERT_EQ(response.loads.size(), reference.loads.size());
  EXPECT_EQ(response.makespan, reference.makespan);  // bit-exact
  EXPECT_EQ(response.serialized_makespan, reference.serialized_makespan);
  for (std::size_t i = 0; i < reference.loads.size(); ++i) {
    EXPECT_EQ(response.loads[i].load_id, reference.loads[i].spec.id);
    EXPECT_EQ(response.loads[i].start, reference.loads[i].start);
    EXPECT_EQ(response.loads[i].completion, reference.loads[i].completion);
    EXPECT_EQ(response.loads[i].deadline_met,
              reference.loads[i].deadline_met);
  }
  if (request.want_payments) {
    const dls::multiload::MultiLoadAssessment assessment =
        dls::multiload::assess_loads(network, network.processing_times(),
                                     specs, dls::core::MechanismConfig{});
    for (std::size_t i = 0; i < assessment.loads.size(); ++i) {
      EXPECT_EQ(response.loads[i].total_payment,
                assessment.loads[i].total_payment);
    }
    EXPECT_EQ(response.total_payment, assessment.total_payment);
  }
}

TEST(ServeMultiLoadSoak, ConcurrentClientsAlwaysGetReferenceAnswers) {
  const int clients = 4;
  const int per_client = 8 * soak_multiplier();
  Watchdog watchdog(120.0 * soak_multiplier());

  ServiceConfig config;
  config.queue_capacity = 256;  // admission pressure is not under test
  SchedulerService service(config);

  std::atomic<std::uint64_t> multi_ok{0};
  std::atomic<std::uint64_t> single_ok{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      SchedulerClient client(service.connect());
      Rng rng(0x50A4 + static_cast<std::uint64_t>(c) * 7919);
      for (int iter = 0; iter < per_client; ++iter) {
        const MultiScheduleRequest request = random_request(rng);
        const MultiScheduleResponse response = client.schedule_multi(request);
        check_against_reference(request, response);
        multi_ok.fetch_add(1, std::memory_order_relaxed);
        // Interleave single-load traffic on the same connection so the
        // two request kinds share every queue and dispatch window.
        const ScheduleResponse single =
            client.schedule(request.w, request.z);
        ASSERT_EQ(single.status, ScheduleStatus::kOk);
        const dls::net::LinearNetwork network(request.w, request.z);
        dls::dlt::LinearSolution direct;
        dls::dlt::solve_linear_boundary_into(network, direct,
                                             /*want_steps=*/false);
        EXPECT_EQ(single.alpha, direct.alpha);
        EXPECT_EQ(single.makespan, direct.makespan);
        single_ok.fetch_add(1, std::memory_order_relaxed);
      }
      client.close();
    });
  }
  for (std::thread& worker : workers) worker.join();
  service.stop();

  const std::uint64_t expected =
      static_cast<std::uint64_t>(clients) *
      static_cast<std::uint64_t>(per_client);
  EXPECT_EQ(multi_ok.load(), expected);
  EXPECT_EQ(single_ok.load(), expected);
  EXPECT_EQ(service.stats().multi_received, expected);
  EXPECT_GE(service.stats().ok, 2 * expected);
}

}  // namespace
