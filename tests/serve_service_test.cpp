// End-to-end tests for the SchedulerService over the framed transport:
// solved responses match the direct solver bit-for-bit, payments match
// the mechanism's assessment, deadlines expire queued work, a full
// admission queue sheds explicitly, malformed traffic gets typed error
// responses, and stop() answers everything still queued.
#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include "core/dls_lbl.hpp"
#include "dlt/linear.hpp"
#include "net/networks.hpp"
#include "serve/client.hpp"
#include "serve/frame.hpp"
#include "serve/service.hpp"
#include "serve/service_wire.hpp"

namespace {

using dls::serve::Frame;
using dls::serve::FrameType;
using dls::serve::PipeEnd;
using dls::serve::ScheduleOptions;
using dls::serve::ScheduleRequest;
using dls::serve::ScheduleResponse;
using dls::serve::ScheduleStatus;
using dls::serve::SchedulerClient;
using dls::serve::SchedulerService;
using dls::serve::ServiceConfig;

const std::vector<double> kW = {1.0, 1.2, 0.9, 1.1};
const std::vector<double> kZ = {0.15, 0.1, 0.2};

/// Raw-frame helpers for tests that bypass the typed client.
void send_request(PipeEnd& end, const ScheduleRequest& request) {
  dls::serve::write_frame(end, Frame{FrameType::kScheduleRequest,
                                     encode_schedule_request(request)});
}

ScheduleResponse read_response(PipeEnd& end) {
  const std::optional<Frame> frame = dls::serve::read_frame(end);
  EXPECT_TRUE(frame.has_value()) << "connection closed without a response";
  EXPECT_EQ(frame->type, FrameType::kScheduleResponse);
  return dls::serve::decode_schedule_response(frame->payload);
}

TEST(ServeServiceTest, OkResponseMatchesDirectSolverExactly) {
  SchedulerService service(ServiceConfig{});
  SchedulerClient client(service.connect());
  const ScheduleResponse response = client.schedule(kW, kZ);
  ASSERT_EQ(response.status, ScheduleStatus::kOk);

  const dls::net::LinearNetwork network(kW, kZ);
  dls::dlt::LinearSolution direct;
  dls::dlt::solve_linear_boundary_into(network, direct,
                                       /*want_steps=*/false);
  EXPECT_EQ(response.alpha, direct.alpha);  // bit-exact doubles
  EXPECT_EQ(response.makespan, direct.makespan);
}

TEST(ServeServiceTest, PaymentsMatchComplianceAssessment) {
  SchedulerService service(ServiceConfig{});
  SchedulerClient client(service.connect());
  ScheduleOptions options;
  options.want_payments = true;
  const ScheduleResponse response = client.schedule(kW, kZ, options);
  ASSERT_EQ(response.status, ScheduleStatus::kOk);

  const dls::net::LinearNetwork network(kW, kZ);
  const dls::core::DlsLblResult direct = dls::core::assess_compliant(
      network, network.processing_times(), dls::core::MechanismConfig{});
  ASSERT_EQ(response.payments.size(), direct.processors.size());
  for (std::size_t i = 0; i < direct.processors.size(); ++i) {
    EXPECT_EQ(response.payments[i], direct.processors[i].money.payment);
  }
  EXPECT_EQ(response.total_payment, direct.total_payment);
}

TEST(ServeServiceTest, QueuedRequestPastDeadlineExpires) {
  ServiceConfig config;
  config.start_paused = true;
  SchedulerService service(config);
  PipeEnd end = service.connect();

  ScheduleRequest request;
  request.request_id = 7;
  request.w = kW;
  request.z = kZ;
  request.options.deadline_us = 1000.0;  // 1 ms
  send_request(end, request);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service.resume();

  const ScheduleResponse response = read_response(end);
  EXPECT_EQ(response.request_id, 7u);
  EXPECT_EQ(response.status, ScheduleStatus::kExpired);
  EXPECT_EQ(service.stats().expired, 1u);
}

TEST(ServeServiceTest, ServiceDefaultDeadlineApplies) {
  ServiceConfig config;
  config.start_paused = true;
  config.default_deadline_us = 1000.0;  // requests carry no deadline
  SchedulerService service(config);
  PipeEnd end = service.connect();

  ScheduleRequest request;
  request.request_id = 8;
  request.w = kW;
  request.z = kZ;
  send_request(end, request);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service.resume();
  EXPECT_EQ(read_response(end).status, ScheduleStatus::kExpired);
}

TEST(ServeServiceTest, FullQueueShedsImmediately) {
  ServiceConfig config;
  config.start_paused = true;
  config.queue_capacity = 1;
  SchedulerService service(config);
  PipeEnd end = service.connect();

  ScheduleRequest request;
  request.w = kW;
  request.z = kZ;
  request.request_id = 1;
  send_request(end, request);  // fills the single queue slot
  request.request_id = 2;
  send_request(end, request);  // over capacity: shed at admission

  // The shed answer arrives while the dispatcher is still paused.
  const ScheduleResponse shed = read_response(end);
  EXPECT_EQ(shed.request_id, 2u);
  EXPECT_EQ(shed.status, ScheduleStatus::kShed);

  service.resume();
  const ScheduleResponse ok = read_response(end);
  EXPECT_EQ(ok.request_id, 1u);
  EXPECT_EQ(ok.status, ScheduleStatus::kOk);
  EXPECT_EQ(service.stats().shed, 1u);
}

TEST(ServeServiceTest, ClientRetriesThroughShed) {
  ServiceConfig config;
  config.start_paused = true;
  config.queue_capacity = 1;
  SchedulerService service(config);
  PipeEnd raw = service.connect();
  SchedulerClient client(service.connect());

  ScheduleRequest filler;
  filler.request_id = 1;
  filler.w = kW;
  filler.z = kZ;
  send_request(raw, filler);  // occupies the queue while paused

  std::thread resumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    service.resume();
  });
  dls::protocol::HeartbeatConfig policy;
  policy.period = 0.01;
  policy.retry_budget = 20;
  const ScheduleResponse response =
      client.schedule_with_retry(kW, kZ, {}, policy);
  resumer.join();
  EXPECT_EQ(response.status, ScheduleStatus::kOk);
  EXPECT_GE(service.stats().shed, 1u);
}

TEST(ServeServiceTest, InfeasibleTopologyIsTypedError) {
  SchedulerService service(ServiceConfig{});
  SchedulerClient client(service.connect());
  const std::vector<double> bad_w = {1.0, -2.0};
  const std::vector<double> z = {0.1};
  const ScheduleResponse response = client.schedule(bad_w, z);
  EXPECT_EQ(response.status, ScheduleStatus::kError);
  EXPECT_FALSE(response.error.empty());
  EXPECT_EQ(service.stats().errors, 1u);
}

TEST(ServeServiceTest, WrongFrameTypeGetsErrorResponse) {
  SchedulerService service(ServiceConfig{});
  PipeEnd end = service.connect();
  dls::serve::write_frame(end, Frame{FrameType::kBid, {0x01, 0x02}});
  const ScheduleResponse response = read_response(end);
  EXPECT_EQ(response.status, ScheduleStatus::kError);
  EXPECT_NE(response.error.find("unexpected frame type"), std::string::npos);
}

TEST(ServeServiceTest, MalformedRequestPayloadGetsErrorResponse) {
  SchedulerService service(ServiceConfig{});
  PipeEnd end = service.connect();
  dls::serve::write_frame(
      end, Frame{FrameType::kScheduleRequest, {0xDE, 0xAD, 0xBE, 0xEF}});
  const ScheduleResponse response = read_response(end);
  EXPECT_EQ(response.request_id, 0u);  // id unknown: decode failed
  EXPECT_EQ(response.status, ScheduleStatus::kError);
}

TEST(ServeServiceTest, StopAnswersQueuedRequests) {
  ServiceConfig config;
  config.start_paused = true;
  SchedulerService service(config);
  PipeEnd end = service.connect();

  ScheduleRequest request;
  request.request_id = 11;
  request.w = kW;
  request.z = kZ;
  send_request(end, request);
  // Wait until admission happened so stop() finds it queued.
  while (service.stats().admitted < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.stop();
  const ScheduleResponse response = read_response(end);
  EXPECT_EQ(response.request_id, 11u);
  EXPECT_EQ(response.status, ScheduleStatus::kError);
  EXPECT_NE(response.error.find("stopped"), std::string::npos);
  // After the drain the connection is closed: clean EOF.
  EXPECT_FALSE(dls::serve::read_frame(end).has_value());
}

TEST(ServeServiceTest, ConnectAfterStopThrows) {
  SchedulerService service(ServiceConfig{});
  service.stop();
  EXPECT_THROW(service.connect(), dls::Error);
}

TEST(ServeServiceTest, StatsTallyResponses) {
  SchedulerService service(ServiceConfig{});
  SchedulerClient client(service.connect());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(client.schedule(kW, kZ).status, ScheduleStatus::kOk);
  }
  const dls::serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.received, 3u);
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.ok, 3u);
  EXPECT_EQ(stats.shed + stats.expired + stats.errors, 0u);
  // Two of the three identical requests were cache hits.
  EXPECT_EQ(service.cache().hits(), 2u);
  EXPECT_EQ(service.cache().misses(), 1u);
}

}  // namespace
