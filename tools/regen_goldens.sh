#!/usr/bin/env bash
# Regenerates the checked-in golden traces under tests/golden/.
#
# Goldens are rendered at DLS_OBS_LEVEL=2 (the level the CI verify job
# builds at), which the default local build typically is not — so this
# script configures a dedicated build tree with the level pinned, builds
# the golden test, and re-runs it with DLS_REGEN_GOLDENS=1 so the test
# writes the trace it would otherwise compare against. Usage:
#
#   tools/regen_goldens.sh
#
# Review the resulting diff under tests/golden/ before committing: every
# byte of drift is an intentional observability change you are blessing.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${GOLDEN_BUILD_DIR:-build-golden}
JOBS=${GOLDEN_JOBS:-$(nproc)}

cmake -S . -B "$BUILD_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDLS_OBS_LEVEL=2 >/dev/null
cmake --build "$BUILD_DIR" --target obs_golden_test -j "$JOBS"

mkdir -p tests/golden
DLS_REGEN_GOLDENS=1 "$BUILD_DIR"/tests/obs_golden_test \
  --gtest_filter='ObsGolden.Fig2TraceMatchesGolden'

# Immediately verify the fresh golden round-trips.
"$BUILD_DIR"/tests/obs_golden_test

echo "goldens regenerated under tests/golden/"
git --no-pager diff --stat -- tests/golden/ || true
