#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy) over every first-party
# translation unit, against a compile-commands database it configures on
# demand. Usage:
#
#   tools/run_tidy.sh [--if-available] [--fix] [path ...]
#
#   --if-available  exit 0 (with a notice) when clang-tidy is not
#                   installed, instead of the default exit 2 — for
#                   developer machines without the LLVM toolchain; CI
#                   always installs it and uses the strict default.
#   --fix           apply clang-tidy's suggested fixits in place.
#   path ...        restrict the run to the given files (default: all
#                   .cpp files under src/, tests/, bench/, examples/).
#
# Exit status: 0 clean, 1 findings, 2 missing toolchain.
set -euo pipefail

cd "$(dirname "$0")/.."

TIDY=${CLANG_TIDY:-clang-tidy}
BUILD_DIR=${TIDY_BUILD_DIR:-build-tidy}
JOBS=${TIDY_JOBS:-$(nproc)}

if_available=0
fix_args=()
paths=()
for arg in "$@"; do
  case "$arg" in
    --if-available) if_available=1 ;;
    --fix) fix_args+=(--fix --fix-errors) ;;
    *) paths+=("$arg") ;;
  esac
done

if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_tidy: '$TIDY' not found. Install clang-tidy (apt: clang-tidy)" >&2
  echo "run_tidy: or point CLANG_TIDY at the binary." >&2
  if [[ $if_available -eq 1 ]]; then
    echo "run_tidy: --if-available set; skipping." >&2
    exit 0
  fi
  exit 2
fi

# The project always exports compile commands; configure only when the
# database is missing or stale relative to the CMake lists.
if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Debug >/dev/null
fi

if [[ ${#paths[@]} -eq 0 ]]; then
  mapfile -t paths < <(git ls-files \
    'src/**/*.cpp' 'tests/*.cpp' 'bench/*.cpp' 'examples/*.cpp')
fi

echo "run_tidy: $(${TIDY} --version | head -1)"
echo "run_tidy: ${#paths[@]} translation units, ${JOBS} jobs"

status=0
printf '%s\n' "${paths[@]}" |
  xargs -P "$JOBS" -n 4 "$TIDY" -p "$BUILD_DIR" --quiet \
    ${fix_args[@]+"${fix_args[@]}"} || status=1

if [[ $status -ne 0 ]]; then
  echo "run_tidy: findings above must be fixed (or NOLINT'd with a reason)." >&2
fi
exit $status
