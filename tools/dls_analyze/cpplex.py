"""A small C++ lexer: comments/literals stripped, identifier and
punctuation tokens with line numbers. Shared by the lock-order and
fp-fence checks, which reason about source shape rather than semantics.
"""

from __future__ import annotations

import dataclasses
import re
from typing import List


@dataclasses.dataclass
class Token:
    kind: str  # "id" | "num" | "punct"
    value: str
    line: int


def strip_comments_and_strings(text: str) -> str:
    """Replace comments and string/char literal BODIES with spaces,
    preserving every newline (so line numbers survive) and the quotes
    themselves (so the token stream keeps its shape)."""
    out: List[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            span = text[i:j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in span))
            i = j + 2
        elif c == "R" and nxt == '"':
            m = re.match(r'R"([^(\s]*)\(', text[i:])
            if not m:
                out.append(c)
                i += 1
                continue
            close = ")" + m.group(1) + '"'
            j = text.find(close, i + m.end())
            j = n - len(close) if j == -1 else j
            span = text[i:j + len(close)]
            out.append('""' + "".join(
                ch if ch == "\n" else " " for ch in span[2:]))
            i = j + len(close)
        elif c in "\"'":
            quote = c
            j = i + 1
            body: List[str] = []
            while j < n and text[j] != quote:
                if text[j] == "\\" and j + 1 < n:
                    body.append(" " if text[j + 1] != "\n" else "\n")
                    body.append(" ")
                    j += 2
                else:
                    body.append(text[j] if text[j] == "\n" else " ")
                    j += 1
            out.append(quote + "".join(body) + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


_TOKEN_RE = re.compile(r"[A-Za-z_]\w*|\d[\w.]*|::|->|\S")


def lex(text: str) -> List[Token]:
    """Tokenize ALREADY-STRIPPED text (call strip_comments_and_strings
    first). Empty string literals left by stripping become '""' punct
    tokens, which is fine for structural matching."""
    tokens: List[Token] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        for m in _TOKEN_RE.finditer(line):
            v = m.group(0)
            if v[0].isalpha() or v[0] == "_":
                kind = "id"
            elif v[0].isdigit():
                kind = "num"
            else:
                kind = "punct"
            tokens.append(Token(kind, v, lineno))
    return tokens


def match_close(tokens: List[Token], start: int,
                open_tok: str = "(", close_tok: str = ")") -> int:
    """Index of the token closing the bracket at tokens[start], or -1."""
    depth = 0
    for i in range(start, len(tokens)):
        if tokens[i].value == open_tok:
            depth += 1
        elif tokens[i].value == close_tok:
            depth -= 1
            if depth == 0:
                return i
    return -1
