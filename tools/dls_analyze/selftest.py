#!/usr/bin/env python3
"""Self-test: run the analyzer against the seeded-violation fixtures.

Each fixture under tools/dls_analyze/fixtures/ plants exactly one
discipline violation (an allocation on an annotated hot path, a lock
inversion, a stray fma). A healthy analyzer must exit 1 on every one of
them AND say why with a pointed diagnostic — this is the regression
guard against the failure mode static checkers actually die of:
silently going green.

Compile databases are generated on the fly (absolute paths are
machine-specific, so none are committed). Exit 0 when every fixture
fails the way it should, 1 otherwise.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

TOOL_DIR = Path(__file__).resolve().parent
REPO = TOOL_DIR.parent.parent
FIXTURES = TOOL_DIR / "fixtures"


def _write_compiledb(build_dir: Path, sources: list[Path],
                     extra_flags: list[str]) -> None:
    cxx = os.environ.get("CXX", "c++")
    entries = []
    for src in sources:
        args = [cxx, "-std=c++20", f"-I{REPO / 'src'}",
                "-ffp-contract=off", *extra_flags,
                "-c", str(src), "-o", src.stem + ".o"]
        entries.append({"directory": str(build_dir),
                        "file": str(src),
                        "arguments": args})
    (build_dir / "compile_commands.json").write_text(
        json.dumps(entries, indent=2), encoding="utf-8")


def _run_analyzer(argv: list[str]) -> subprocess.CompletedProcess:
    cmd = [sys.executable, str(TOOL_DIR), *argv]
    return subprocess.run(cmd, capture_output=True, text=True, cwd=REPO)


def _expect(name: str, proc: subprocess.CompletedProcess,
            substrings: list[str]) -> list[str]:
    problems = []
    if proc.returncode != 1:
        problems.append(
            f"{name}: expected exit 1 (findings), got {proc.returncode}\n"
            f"--- stdout ---\n{proc.stdout}\n--- stderr ---\n{proc.stderr}")
        return problems
    for want in substrings:
        if want not in proc.stdout:
            problems.append(
                f"{name}: diagnostic does not mention {want!r}\n"
                f"--- stdout ---\n{proc.stdout}")
    return problems


def case_planted_alloc(tmp: Path) -> list[str]:
    src_root = FIXTURES / "planted_alloc" / "src"
    build = tmp / "planted_alloc"
    build.mkdir()
    _write_compiledb(build, [src_root / "hot.cpp"], [])
    proc = _run_analyzer(["--checks", "noalloc",
                          "--build-dir", str(build),
                          "--src", str(src_root),
                          "--waivers", ""])
    return _expect("planted_alloc", proc, [
        "planted_alloc_sum",
        "DLS_HOT_NOALLOC",
        "operator new",
        "call path (shortest)",
    ])


def case_planted_inversion(tmp: Path) -> list[str]:
    src_root = FIXTURES / "planted_inversion" / "src"
    proc = _run_analyzer(["--checks", "locks",
                          "--src", str(src_root),
                          "--waivers", ""])
    return _expect("planted_inversion", proc, [
        "lock-order cycle",
        "Inverted::first_",
        "Inverted::second_",
        "inverted.cpp",
    ])


def case_planted_fma(tmp: Path) -> list[str]:
    src_root = FIXTURES / "planted_fma" / "src"
    build = tmp / "planted_fma"
    build.mkdir()
    _write_compiledb(build, [src_root / "fused.cpp"], [])
    proc = _run_analyzer(["--checks", "fpfence",
                          "--build-dir", str(build),
                          "--src", str(src_root),
                          "--waivers", ""])
    return _expect("planted_fma", proc, [
        "fma() call",
        "fused.cpp",
    ])


def main() -> int:
    cases = [case_planted_alloc, case_planted_inversion, case_planted_fma]
    problems: list[str] = []
    with tempfile.TemporaryDirectory(prefix="dls_selftest_") as tmp_str:
        tmp = Path(tmp_str)
        for case in cases:
            got = case(tmp)
            status = "FAIL" if got else "ok"
            print(f"selftest [{case.__name__}] {status}")
            problems.extend(got)
    if problems:
        print()
        for p in problems:
            print(p)
        print(f"\nselftest: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"selftest: {len(cases)} fixture(s) all fail as designed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
