"""Findings model and rendering shared by every check."""

from __future__ import annotations

import dataclasses
import json
from typing import List, Optional


@dataclasses.dataclass
class Finding:
    """One diagnostic. `details` carries the evidence trail (a call path,
    a cycle walk, ...) rendered as indented lines under the message."""

    check: str
    severity: str  # "error" | "warning"
    file: str
    line: int
    message: str
    details: List[str] = dataclasses.field(default_factory=list)

    def location(self) -> str:
        if self.line > 0:
            return f"{self.file}:{self.line}"
        return self.file or "<project>"


@dataclasses.dataclass
class CheckResult:
    """Findings plus the positive facts a check established (shown so a
    green run documents what was actually proven, not just 'no output')."""

    check: str
    findings: List[Finding] = dataclasses.field(default_factory=list)
    proven: List[str] = dataclasses.field(default_factory=list)

    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]


def render_text(results: List["CheckResult"]) -> str:
    out: List[str] = []
    total_errors = 0
    for res in results:
        errors = res.errors()
        warnings = [f for f in res.findings if f.severity != "error"]
        total_errors += len(errors)
        status = "FAIL" if errors else "ok"
        out.append(f"[{res.check}] {status}: {len(errors)} error(s), "
                   f"{len(warnings)} warning(s)")
        for fact in res.proven:
            out.append(f"  proved: {fact}")
        for f in res.findings:
            out.append(f"  {f.severity}: {f.location()}: {f.message}")
            for line in f.details:
                out.append(f"      {line}")
    out.append("")
    if total_errors:
        out.append(f"dls_analyze: {total_errors} error(s)")
    else:
        out.append("dls_analyze: clean")
    return "\n".join(out)


def to_json(results: List["CheckResult"], path: Optional[str]) -> str:
    payload = {
        "results": [
            {
                "check": res.check,
                "proven": res.proven,
                "findings": [dataclasses.asdict(f) for f in res.findings],
            }
            for res in results
        ],
        "errors": sum(len(res.errors()) for res in results),
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    if path:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    return text
