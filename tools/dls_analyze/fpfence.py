"""fp-fence: keep floating-point contraction and FMA out of everything
except the sanctioned kernel header, and pin the compile flags that make
the bit-identity story (scalar vs SIMD lanes compared with exact ==)
actually hold.

Three rule groups:

  flags    every src/ TU must compile with -ffp-contract=off (the
           top-level CMakeLists adds it project-wide) and without any of
           the fast-math family — a TU that re-enables contraction can
           fuse a*b+c on one path but not the other and silently break
           the == audits.
  sources  outside the kernel header, std::fma / __builtin_fma* / FMA
           intrinsics / `#pragma STDC FP_CONTRACT ON` / direct
           <immintrin.h> or <arm_neon.h> includes are banned: all SIMD
           and all re-association lives in dlt/batch_kernels.hpp.
  anchors  inside the kernel header the sanctioned left-associated
           spellings of the α̂ recurrence must be present verbatim, and
           kernel-consuming TUs must not re-derive the recurrence inline
           (the `(x + tail) + z` shape) — there is exactly ONE spelling
           of every recurrence, in the kernel header or linear.cpp.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List

from . import compiledb, cpplex
from .report import CheckResult, Finding

KERNEL_HEADER = Path("dlt") / "batch_kernels.hpp"
# linear.cpp holds pair_alpha_hat — the scalar canonical spelling the
# kernels mirror; it may state the recurrence.
SANCTIONED_SOURCES = {KERNEL_HEADER, Path("dlt") / "linear.cpp"}

BANNED_FLAGS = {
    "-ffast-math": "enables unsafe FP transformations project-wide",
    "-funsafe-math-optimizations": "licenses re-association",
    "-fassociative-math": "licenses re-association",
    "-freciprocal-math": "replaces division with reciprocal multiply",
    "-Ofast": "implies -ffast-math",
    "-ffp-contract=fast": "allows FMA fusion across expressions",
    "-ffp-contract=on": "allows FMA fusion within expressions",
}
REQUIRED_FLAG = "-ffp-contract=off"

_FMA_CALL_RE = re.compile(r"\b(?:std\s*::\s*)?fma[fl]?\s*\(")
_FMA_BUILTIN_RE = re.compile(r"\b__builtin_fma\w*\b")
_FMA_INTRIN_RE = re.compile(
    r"\b(?:_mm\d*_f[nm]?m(?:add|sub)\w*|vfma\w*|vfms\w*)\b")
_PRAGMA_RE = re.compile(r"#\s*pragma\s+STDC\s+FP_CONTRACT\s+ON")
_SIMD_INCLUDE_RE = re.compile(r'#\s*include\s*[<"](immintrin|arm_neon)\.h[>"]')

# The exact association-order spellings the kernels and their audits
# rely on; whitespace-insensitive. If a kernel rewrite drops one of
# these, the fence fails loudly so the change is made consciously in
# both places.
KERNEL_ANCHORS = [
    "(w[k] + tail[k]) + z[k]",
    "(w + tail[k]) + z",
    "(bids[k] + tail) + z",
    "_mm256_add_pd(_mm256_add_pd(wv, tv), zv)",
    "vaddq_f64(vaddq_f64(wv, tv), zv)",
]

# A parenthesized sum ending in a tail-named term, itself summed again:
# the `(x + tail) + z` denominator shape of the α̂ recurrence.
_REDERIVE_RE = re.compile(
    r"\(\s*[A-Za-z_]\w*(?:\[[^\]\n]*\])?\s*\+\s*"
    r"[A-Za-z_]*tail\w*(?:\[[^\]\n]*\])?\s*\)\s*\+")


def _norm(text: str) -> str:
    return re.sub(r"\s+", "", text)


def run(src_root: str, entries: List[compiledb.Entry]) -> CheckResult:
    res = CheckResult(check="fp-fence")
    root = Path(src_root).resolve()

    flagged_tus = 0
    for e in entries:
        rel = _rel(e.resolved_file(), root)
        flags = compiledb.compiler_flags(e)
        joined = set(flags)
        for bad, why in BANNED_FLAGS.items():
            if bad in joined:
                res.findings.append(Finding(
                    "fp-fence", "error", rel, 0,
                    f"compile command carries {bad} ({why}); the solver's "
                    "bit-identity audits require default IEEE semantics"))
        # Last -ffp-contract wins; require the effective value to be off.
        effective = None
        for f in flags:
            if f.startswith("-ffp-contract="):
                effective = f
            elif f == "-Ofast":
                effective = "-ffp-contract=fast"
        if effective != REQUIRED_FLAG:
            got = effective or "compiler default (fast at -O2+ for GCC)"
            res.findings.append(Finding(
                "fp-fence", "error", rel, 0,
                f"compile command must pin {REQUIRED_FLAG} (effective: "
                f"{got}) — contraction may fuse a*b+c into an FMA on one "
                "code path but not its bit-identity twin"))
        else:
            flagged_tus += 1

    files = sorted(p for p in root.rglob("*")
                   if p.suffix in (".cpp", ".hpp", ".h", ".cc"))
    for path in files:
        rel_path = path.relative_to(root)
        rel = _rel(path, root)
        raw = path.read_text(encoding="utf-8", errors="replace")
        stripped = cpplex.strip_comments_and_strings(raw)
        in_kernel = rel_path == KERNEL_HEADER
        for lineno, line in enumerate(stripped.splitlines(), start=1):
            if _PRAGMA_RE.search(line):
                res.findings.append(Finding(
                    "fp-fence", "error", rel, lineno,
                    "#pragma STDC FP_CONTRACT ON re-enables fusion the "
                    "build globally disabled"))
            if in_kernel:
                continue
            for pat, what in ((_FMA_CALL_RE, "fma() call"),
                              (_FMA_BUILTIN_RE, "__builtin_fma*"),
                              (_FMA_INTRIN_RE, "FMA intrinsic")):
                if pat.search(line):
                    res.findings.append(Finding(
                        "fp-fence", "error", rel, lineno,
                        f"{what} outside {KERNEL_HEADER} — fused rounding "
                        "diverges from the scalar reference the audits "
                        "replay"))
            if _SIMD_INCLUDE_RE.search(line):
                res.findings.append(Finding(
                    "fp-fence", "error", rel, lineno,
                    f"SIMD intrinsics header included outside "
                    f"{KERNEL_HEADER}; all lane kernels live there"))

        if rel_path.parts[:1] == ("dlt",) and \
                rel_path not in SANCTIONED_SOURCES:
            for lineno, line in enumerate(stripped.splitlines(), start=1):
                if _REDERIVE_RE.search(line):
                    res.findings.append(Finding(
                        "fp-fence", "error", rel, lineno,
                        "re-derived α̂ recurrence (the '(x + tail) + z' "
                        "association) outside the sanctioned kernels — "
                        "call the batch_kernels.hpp helper instead so "
                        "there is exactly one spelling to audit"))

    kernel = root / KERNEL_HEADER
    if kernel.is_file():
        body = _norm(kernel.read_text(encoding="utf-8", errors="replace"))
        missing = [a for a in KERNEL_ANCHORS if _norm(a) not in body]
        for a in missing:
            res.findings.append(Finding(
                "fp-fence", "error", _rel(kernel, root), 0,
                f"sanctioned association anchor '{a}' not found in the "
                "kernel header — if the kernels were rewritten, update "
                "the fence and the audits together"))
        if not missing:
            res.proven.append(
                f"{len(KERNEL_ANCHORS)} sanctioned association anchors "
                f"present in {KERNEL_HEADER}")

    if flagged_tus and not res.errors():
        res.proven.append(
            f"{flagged_tus} TU(s) pinned to {REQUIRED_FLAG}, no fast-math")
    return res


def _rel(path: Path, root: Path) -> str:
    try:
        return str(Path("src") / path.relative_to(root))
    except ValueError:
        return str(path)
