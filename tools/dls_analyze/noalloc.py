"""no-alloc reachability: DLS_HOT_NOALLOC functions never reach an
allocator.

Roots are located by scanning the source tree for the literal macro name
at definition sites (the annotation policy in src/common/discipline.hpp
requires it verbatim — GCC builds carry no AST marker) and binding each
site to the nearest following function node in the merged call graph.
From each root a BFS walks callees; reaching operator new / malloc /
__cxa_allocate_exception is a violation reported with the shortest call
path. Waived functions (sanctioned cold branches and amortized container
growth — see waivers.conf) prune the walk: nothing reached only through
a waived function is charged to the hot path.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Dict, List, Tuple

from . import callgraph, waivers
from .report import CheckResult, Finding

MACRO = "DLS_HOT_NOALLOC"

# C-level allocation entry points, by symbol.
_C_SINKS = {
    "malloc", "calloc", "realloc", "reallocarray", "aligned_alloc",
    "posix_memalign", "memalign", "valloc", "pvalloc", "strdup", "strndup",
    "__cxa_allocate_exception",
}

# Growth of warmed buffers is amortized away by the arena discipline
# (reserve up front, reuse across solves); the steady-state guarantee is
# "no un-amortized allocation", with bench_perf_micro's live allocation
# counters as the dynamic complement. Cold [[noreturn]] error helpers
# are allowed to build their formatted messages.
DEFAULT_WAIVERS = [
    ("std::vector<*>::reserve*",
     "arena pre-sizing; amortized away after warm-up"),
    ("*::_M_fill_assign*",
     "vector::assign growth of a warmed buffer (first touch only)"),
    ("*::_M_default_append*",
     "vector::resize growth of a warmed buffer (first touch only)"),
    ("*::_M_fill_insert*",
     "vector::insert growth of a warmed buffer (first touch only)"),
    ("*::_M_realloc_insert*",
     "vector::push_back growth of a warmed buffer (first touch only)"),
    ("*::_M_realloc_append*",
     "vector::push_back growth of a warmed buffer (first touch only)"),
    ("*::_M_range_initialize*",
     "container construction happens before the hot loop"),
    ("dls::detail::throw_precondition*",
     "[[noreturn]] cold path of DLS_REQUIRE; never taken on valid input"),
    ("dls::check::detail::fail*",
     "[[noreturn]] cold path of DLS_CHECK; compiled out at level 0 anyway"),
    ("std::__throw_*",
     "libstdc++ [[noreturn]] cold branches (bad_alloc, length_error, ...)"),
]


def _is_sink(node: callgraph.Node) -> bool:
    m = node.mangled
    if m in _C_SINKS:
        return True
    # _Znwm/_Znam operator new families; placement forms (…Pv…) are
    # non-allocating and always inlined anyway.
    if (m.startswith("_Znwm") or m.startswith("_Znam")) and "Pv" not in m:
        return True
    return False


@dataclasses.dataclass
class Annotation:
    file: Path
    line: int


def find_annotations(src_root: str) -> List[Annotation]:
    out = []
    root = Path(src_root)
    for path in sorted(root.rglob("*")):
        if path.suffix not in (".cpp", ".hpp", ".h", ".cc"):
            continue
        if path.name == "discipline.hpp":
            continue  # the macro's own definition and docs
        for lineno, line in enumerate(
                path.read_text(encoding="utf-8", errors="replace")
                .splitlines(), start=1):
            if MACRO not in line:
                continue
            if line.lstrip().startswith("//"):
                continue
            out.append(Annotation(path.resolve(), lineno))
    return out


def _bind(ann: Annotation, graph: callgraph.CallGraph,
          window: int = 8) -> List[str]:
    """Graph nodes defined at the annotation site: same file, nearest
    definition line within `window` lines below the macro."""
    best_line = None
    best: List[str] = []
    for key, node in graph.nodes.items():
        if not node.defined or not node.file:
            continue
        try:
            node_file = Path(node.file).resolve()
        except OSError:
            continue
        if node_file != ann.file:
            continue
        if not ann.line <= node.line <= ann.line + window:
            continue
        if best_line is None or node.line < best_line:
            best_line = node.line
            best = [key]
        elif node.line == best_line:
            best.append(key)
    return best


def run(src_root: str, graph: callgraph.CallGraph,
        extra: List[waivers.Waiver]) -> CheckResult:
    res = CheckResult(check="noalloc")
    all_waivers = [waivers.Waiver("noalloc", p, r, "<built-in>")
                   for p, r in DEFAULT_WAIVERS]
    all_waivers += extra
    wset = waivers.WaiverSet(all_waivers, "noalloc")

    annotations = find_annotations(src_root)
    if not annotations:
        res.findings.append(Finding(
            "noalloc", "error", src_root, 0,
            f"no {MACRO} annotations found under the source root"))
        return res

    def pruned(key: str) -> bool:
        node = graph.nodes.get(key)
        dem = node.demangled if node else key
        return wset.match(dem, key) is not None

    def sink(key: str) -> bool:
        node = graph.nodes.get(key)
        return node is not None and _is_sink(node)

    proved = 0
    for ann in annotations:
        rel = _relpath(ann.file, src_root)
        roots = _bind(ann, graph)
        if not roots:
            res.findings.append(Finding(
                "noalloc", "error", rel, ann.line,
                f"{MACRO} annotation does not match any compiled function "
                "definition (TU missing from the compile database, or the "
                "macro is not directly above the definition)"))
            continue
        for root in roots:
            path = callgraph.shortest_path(graph, root, sink, pruned)
            name = graph.name(root)
            if path is None:
                proved += 1
                res.proven.append(name)
                continue
            detail = []
            for step, (key, site) in enumerate(path):
                prefix = "   " * min(step, 6) + ("-> " if step else "")
                where = f"  [{site}]" if site else ""
                detail.append(f"{prefix}{graph.name(key)}{where}")
            sink_name = graph.name(path[-1][0])
            res.findings.append(Finding(
                "noalloc", "error", rel, ann.line,
                f"{name} is {MACRO} but can reach {sink_name}; "
                "call path (shortest):", detail))
    if proved:
        res.proven.insert(
            0, f"{proved} annotated function(s) allocation-free under "
               "DLS_CHECK_LEVEL=0 / DLS_OBS_LEVEL=0")
    return res


def _relpath(path: Path, src_root: str) -> str:
    try:
        return str(path.relative_to(Path(src_root).resolve().parent))
    except ValueError:
        return str(path)
