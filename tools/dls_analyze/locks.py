"""lock-order lattice: extract every mutex acquisition, build the
acquired-while-held graph, fail on cycles.

Two passes over a token stream (cpplex) of the concurrency-bearing
directories (src/serve, src/exec, src/obs, src/protocol — or the whole
tree when none of those exist, as in the self-test fixtures):

  pass A  declaration scan — every `std::mutex` member keyed
          `Class::member` via the lexical scope stack, plus every
          function definition with its body's token range.
  pass B  acquisition replay — lock_guard/scoped_lock/unique_lock
          declarations (CTAD or explicit template args), raw
          `.lock()`/`.unlock()` calls, and unique_lock toggles tracked
          per guard variable; guards release at the closing brace of
          their scope. While any mutex is held, acquiring another adds
          an edge held -> acquired with file:line evidence.

Interprocedural edges come from transitive acquisition summaries: a call
to a scanned function while holding M adds M -> x for every x the callee
(transitively) acquires. Call resolution never guesses: bare calls bind
same-class first (then globally unique, minus STL-shaped homonyms like
size/find/lock), `Class::m(...)` binds exactly, and `obj.m(...)` binds
only when `obj` is a member or local whose declared type is a scanned
class — an untyped receiver contributes no edge rather than a wrong one.

The obs macros (DLS_COUNT/DLS_GAUGE_*/DLS_OBSERVE, DLS_SPAN*) acquire
registry mutexes on their slow paths (first-use registration, buffer
rotation); they are modelled as transient acquisitions of the obs
mutexes so instrumentation inside a critical section still contributes
ordering edges.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from . import cpplex
from .report import CheckResult, Finding

GUARD_TYPES = {"lock_guard", "scoped_lock", "unique_lock", "shared_lock"}
MUTEX_TYPES = {"mutex", "shared_mutex", "recursive_mutex",
               "timed_mutex", "recursive_timed_mutex"}
CONTROL = {"if", "for", "while", "switch", "do", "else", "try", "catch",
           "return", "sizeof", "new", "delete", "throw", "static_assert",
           "alignas", "alignof", "decltype", "noexcept"}

# Macro -> (class, member) mutexes its expansion can acquire.
OBS_MACRO_ALIASES = {
    "DLS_COUNT": [("MetricsRegistry", "mutex_")],
    "DLS_GAUGE_SET": [("MetricsRegistry", "mutex_")],
    "DLS_GAUGE_MAX": [("MetricsRegistry", "mutex_")],
    "DLS_OBSERVE": [("MetricsRegistry", "mutex_")],
    "DLS_SPAN": [("TraceSink", "registry_mutex_"), ("ThreadBuffer", "mutex")],
    "DLS_SPAN_ARGS": [("TraceSink", "registry_mutex_"),
                      ("ThreadBuffer", "mutex")],
    "DLS_SPAN_DETAIL": [("TraceSink", "registry_mutex_"),
                        ("ThreadBuffer", "mutex")],
}

SCAN_DIRS = ("serve", "exec", "obs", "protocol")

# Method names shared with standard containers: a receiver-qualified or
# bare call to one of these never resolves through the "globally unique
# name" rule (buckets_.size() must not bind to SolveCache::size).
STL_HOMONYMS = {
    "size", "empty", "begin", "end", "rbegin", "rend", "clear", "front",
    "back", "data", "find", "count", "at", "insert", "erase", "emplace",
    "push_back", "pop_back", "push_front", "pop_front", "reserve",
    "resize", "swap", "get", "reset", "load", "store", "exchange",
    "value", "c_str", "str", "what", "length", "substr", "append",
    "lock", "unlock", "try_lock", "wait", "notify_one", "notify_all",
}


@dataclasses.dataclass
class MutexDecl:
    key: str  # "Class::member" or "<file-stem>::name" for free mutexes
    member: str
    cls: str
    file: str
    line: int


@dataclasses.dataclass
class FuncDef:
    cls: str  # "" for free functions
    name: str
    file: str
    line: int
    body: Tuple[int, int]  # token index range [start, end) of the body
    tokens: List[cpplex.Token] = dataclasses.field(repr=False,
                                                   default_factory=list)


@dataclasses.dataclass
class Event:
    kind: str  # "acquire" | "release" | "transient" | "call"
    line: int
    mutexes: List[str] = dataclasses.field(default_factory=list)
    guard: str = ""
    depth: int = 0
    callee: Optional[Tuple[str, str]] = None


class Registry:
    def __init__(self) -> None:
        self.decls: List[MutexDecl] = []
        self.by_member: Dict[str, List[MutexDecl]] = {}

    def add(self, decl: MutexDecl) -> None:
        self.decls.append(decl)
        self.by_member.setdefault(decl.member, []).append(decl)

    def resolve(self, member: str, cls_hint: str) -> Optional[str]:
        cands = self.by_member.get(member, [])
        if not cands:
            return None
        for d in cands:
            if d.cls == cls_hint:
                return d.key
        if len(cands) == 1:
            return cands[0].key
        return None  # ambiguous homonym; caller reports a warning

    def has(self, cls: str, member: str) -> bool:
        return any(d.cls == cls for d in self.by_member.get(member, []))


def scan_files(src_root: str) -> List[Path]:
    root = Path(src_root)
    dirs = [root / d for d in SCAN_DIRS if (root / d).is_dir()]
    if not dirs:
        dirs = [root]
    files: List[Path] = []
    for d in dirs:
        files += sorted(d.rglob("*.hpp")) + sorted(d.rglob("*.cpp"))
    return files


def _pass_a(path: Path, registry: Registry,
            funcs: List[FuncDef]) -> List[cpplex.Token]:
    text = cpplex.strip_comments_and_strings(
        path.read_text(encoding="utf-8", errors="replace"))
    toks = cpplex.lex(text)
    rel = str(path)

    # Scope stack entries: (kind, name) with kind in
    # {"class", "namespace", "function", "brace"}.
    stack: List[Tuple[str, str]] = []
    stmt_start = 0  # first token of the currently accumulating statement
    pending_class: Optional[str] = None
    func_open: List[int] = []  # indices into `funcs` awaiting their "}"

    def innermost_class() -> str:
        for kind, name in reversed(stack):
            if kind == "class":
                return name
        return ""

    def in_function() -> bool:
        return any(kind == "function" for kind, _ in stack)

    i = 0
    while i < len(toks):
        t = toks[i]
        v = t.value
        if v in ("class", "struct") and (i == 0 or
                                         toks[i - 1].value != "enum"):
            for j in range(i + 1, min(i + 6, len(toks))):
                if toks[j].kind == "id" and toks[j].value != "alignas":
                    pending_class = toks[j].value
                    break
        elif v == ";":
            if not in_function() and stack and stack[-1][0] == "class":
                _collect_mutex_member(toks, stmt_start, i, innermost_class(),
                                      rel, registry)
            pending_class = None
            stmt_start = i + 1
        elif v == "{":
            stmt = toks[stmt_start:i]
            header_kind = _classify_brace(stmt, pending_class, stack)
            if header_kind == "class":
                stack.append(("class", pending_class or ""))
            elif header_kind == "namespace":
                name = stmt[-1].value if stmt and stmt[-1].kind == "id" else ""
                stack.append(("namespace", name))
            elif header_kind == "function":
                cls, name = _function_name(stmt, innermost_class())
                funcs.append(FuncDef(cls, name, rel, t.line,
                                     (i + 1, -1), toks))
                func_open.append(len(funcs) - 1)
                stack.append(("function", name))
            else:
                stack.append(("brace", ""))
            pending_class = None
            stmt_start = i + 1
        elif v == "}":
            if stack:
                kind, _ = stack.pop()
                if kind == "function" and func_open:
                    fi = func_open.pop()
                    funcs[fi].body = (funcs[fi].body[0], i)
            stmt_start = i + 1
        i += 1
    return toks


def _classify_brace(stmt: List[cpplex.Token], pending_class: Optional[str],
                    stack: List[Tuple[str, str]]) -> str:
    in_func = any(kind == "function" for kind, _ in stack)
    if in_func:
        return "brace"
    values = [t.value for t in stmt]
    if pending_class and ("class" in values or "struct" in values):
        return "class"
    if "namespace" in values:
        return "namespace"
    if "enum" in values:
        return "brace"
    # A function definition header has a parameter list: a '(' whose
    # matching ')' closes before the brace, and doesn't start with a
    # control keyword (those only appear inside functions anyway).
    if "(" in values and ")" in values:
        first = next((t.value for t in stmt if t.kind == "id"), "")
        if first not in CONTROL and "=" not in values[:2]:
            return "function"
    return "brace"


def _function_name(stmt: List[cpplex.Token],
                   class_scope: str) -> Tuple[str, str]:
    first_paren = next((k for k, t in enumerate(stmt) if t.value == "("), -1)
    if first_paren <= 0:
        return class_scope, "<anonymous>"
    k = first_paren - 1
    # operator() / operator[] / operator== etc.
    while k > 0 and stmt[k].kind != "id":
        k -= 1
    name = stmt[k].value if k >= 0 else "<anonymous>"
    cls = class_scope
    if k >= 2 and stmt[k - 1].value == "::" and stmt[k - 2].kind == "id":
        cls = stmt[k - 2].value
    return cls, name


def _collect_mutex_member(toks: List[cpplex.Token], start: int, end: int,
                          cls: str, file: str, registry: Registry) -> None:
    stmt = toks[start:end]
    values = [t.value for t in stmt]
    if "(" in values:  # a member function declaration, not a data member
        return
    has_mutex_type = any(
        values[k] == "std" and k + 2 < len(values) and
        values[k + 1] == "::" and values[k + 2] in MUTEX_TYPES
        for k in range(len(values)))
    if not has_mutex_type:
        return
    # The declared name is the last identifier NOT reached through '::'
    # (type components are) — this keeps a member literally named
    # `mutex` (std::mutex mutex;) distinct from its type.
    name = ""
    line = stmt[0].line if stmt else 0
    for k, t in enumerate(stmt):
        if t.value in ("=", "{"):
            break
        if t.kind == "id" and (k == 0 or stmt[k - 1].value != "::"):
            name = t.value
            line = t.line
    if not name or name in ("std", "mutable", "static", "const"):
        return
    scope = cls if cls else Path(file).stem
    registry.add(MutexDecl(f"{scope}::{name}", name, scope, file, line))


def collect_var_types(toks: List[cpplex.Token], class_names: Set[str],
                      var_types: Dict[str, Optional[str]]) -> None:
    """Map declared variable/member names to scanned-class types: any
    statement-level `KnownClass name` pair types `name`. Conflicting
    declarations across the tree demote the name to ambiguous (None)."""
    for k in range(len(toks) - 1):
        t, nxt = toks[k], toks[k + 1]
        if t.kind != "id" or t.value not in class_names:
            continue
        if k > 0 and toks[k - 1].value in ("::", ".", "->", "class",
                                           "struct", "new"):
            continue
        j = k + 1
        while j < len(toks) and toks[j].value in ("*", "&", "&&", "const"):
            j += 1
        nxt = toks[j] if j < len(toks) else None
        if nxt is None or nxt.kind != "id":
            continue
        if j + 1 < len(toks) and toks[j + 1].value in ("(", "::", "<"):
            continue  # a function returning the class, or qualification
        prev = var_types.get(nxt.value, t.value)
        var_types[nxt.value] = t.value if prev == t.value else None


def _body_events(fn: FuncDef, registry: Registry,
                 method_index: Dict[str, List[Tuple[str, str]]],
                 var_types: Dict[str, Optional[str]],
                 warnings: List[Finding]) -> List[Event]:
    toks = fn.tokens
    start, end = fn.body
    if end < 0:
        end = len(toks)
    events: List[Event] = []
    guards: Dict[str, List[str]] = {}
    depth = 0
    i = start
    while i < end:
        t = toks[i]
        v = t.value
        if v == "{":
            depth += 1
        elif v == "}":
            depth -= 1
            events.append(Event("scope_close", t.line, depth=depth))
        elif t.kind == "id" and v in GUARD_TYPES:
            i = _guard_decl(fn, toks, i, end, depth, guards, events,
                            registry, warnings)
            continue
        elif t.kind == "id" and v in OBS_MACRO_ALIASES and \
                i + 1 < end and toks[i + 1].value == "(":
            mutexes = [f"{c}::{m}" for c, m in OBS_MACRO_ALIASES[v]
                       if registry.has(c, m)]
            if mutexes:
                events.append(Event("transient", t.line, mutexes))
        elif t.kind == "id" and v in ("lock", "unlock", "try_lock") and \
                i >= 2 and toks[i - 1].value in (".", "->") and \
                i + 1 < end and toks[i + 1].value == "(":
            recv = toks[i - 2].value if toks[i - 2].kind == "id" else ""
            if recv in guards:
                kind = "release" if v == "unlock" else "acquire"
                events.append(Event(kind, t.line, guards[recv],
                                    guard=recv, depth=depth))
            else:
                key = registry.resolve(recv, fn.cls)
                if key:
                    kind = "release" if v == "unlock" else "acquire"
                    events.append(Event(kind, t.line, [key],
                                        guard=f"<raw:{recv}>", depth=depth))
        elif t.kind == "id" and i + 1 < end and toks[i + 1].value == "(" \
                and v not in CONTROL:
            recv_tok = toks[i - 1].value if i > start else ""
            recv = ""
            if recv_tok in (".", "->", "::") and i - 2 >= start and \
                    toks[i - 2].kind == "id":
                recv = toks[i - 2].value
            callee = _resolve_call(v, fn.cls, recv_tok, recv,
                                   method_index, var_types)
            if callee and callee != (fn.cls, fn.name):
                events.append(Event("call", t.line, callee=callee))
        i += 1
    return events


def _guard_decl(fn: FuncDef, toks: List[cpplex.Token], i: int, end: int,
                depth: int, guards: Dict[str, List[str]],
                events: List[Event], registry: Registry,
                warnings: List[Finding]) -> int:
    j = i + 1
    if j < end and toks[j].value == "<":
        close = cpplex.match_close(toks, j, "<", ">")
        if close != -1:
            j = close + 1
    if j >= end or toks[j].kind != "id":
        return i + 1  # a mention, not a declaration (e.g. using-decl)
    var = toks[j].value
    if j + 1 >= end or toks[j + 1].value != "(":
        # deferred guard: std::unique_lock<std::mutex> lk; — tracked,
        # acquires on lk.lock()
        guards[var] = []
        return j + 1
    close = cpplex.match_close(toks, j + 1)
    if close == -1:
        return j + 1
    args = toks[j + 2:close]
    mutexes: List[str] = []
    deferred = any(t.value in ("defer_lock", "adopt_lock") for t in args)
    for t in args:
        if t.kind != "id" or t.value in ("std", "defer_lock", "adopt_lock",
                                         "try_to_lock"):
            continue
        key = registry.resolve(t.value, fn.cls)
        if key and key not in mutexes:
            mutexes.append(key)
        elif key is None and t.value in registry.by_member:
            warnings.append(Finding(
                "lock-order", "warning", fn.file, t.line,
                f"ambiguous mutex member '{t.value}' in "
                f"{fn.cls or '<free>'}::{fn.name} — multiple classes "
                "declare it; acquisition not tracked"))
    guards[var] = mutexes
    if mutexes and not deferred:
        events.append(Event("acquire", toks[i].line, mutexes,
                            guard=var, depth=depth))
    return close + 1


def _resolve_call(name: str, cls_hint: str, recv_tok: str, recv: str,
                  method_index: Dict[str, List[Tuple[str, str]]],
                  var_types: Dict[str, Optional[str]]
                  ) -> Optional[Tuple[str, str]]:
    cands = method_index.get(name, [])
    if not cands:
        return None
    if recv_tok == "::" and recv:  # Class::m(...) binds exactly
        return (recv, name) if (recv, name) in cands else None
    if recv_tok in (".", "->"):
        if recv == "this":
            pass  # same as a bare call on the current class
        elif recv == "":
            return None  # chained call, unknown receiver: no edge
        else:
            recv_cls = var_types.get(recv)
            if recv_cls is None:
                return None  # untyped or ambiguous receiver: no edge
            return (recv_cls, name) if (recv_cls, name) in cands else None
    for c in cands:
        if c[0] == cls_hint:
            return c
    if len(cands) == 1 and name not in STL_HOMONYMS:
        return cands[0]
    return None


def _replay(fn: FuncDef, events: List[Event],
            trans: Dict[Tuple[str, str], Set[str]],
            edges: Dict[Tuple[str, str], str]) -> None:
    held: List[Tuple[str, int, str]] = []  # (mutex, depth, guard)

    def held_keys() -> List[str]:
        return [m for m, _, _ in held]

    def add_edges(targets: List[str], line: int, note: str = "") -> None:
        for h in held_keys():
            for m in targets:
                if m == h:
                    continue
                evidence = f"{fn.file}:{line} in " \
                           f"{fn.cls + '::' if fn.cls else ''}{fn.name}{note}"
                edges.setdefault((h, m), evidence)

    for ev in events:
        if ev.kind == "acquire":
            add_edges(ev.mutexes, ev.line)
            for m in ev.mutexes:
                held.append((m, ev.depth, ev.guard))
        elif ev.kind == "release":
            for m in ev.mutexes:
                for k in range(len(held) - 1, -1, -1):
                    if held[k][0] == m and held[k][2] == ev.guard:
                        held.pop(k)
                        break
        elif ev.kind == "scope_close":
            held = [(m, d, g) for m, d, g in held if d <= ev.depth]
        elif ev.kind == "transient":
            add_edges(ev.mutexes, ev.line)
        elif ev.kind == "call" and ev.callee in trans:
            targets = sorted(trans[ev.callee] - set(held_keys()))
            if targets:
                callee = f"{ev.callee[0]}::{ev.callee[1]}" \
                    if ev.callee[0] else ev.callee[1]
                add_edges(targets, ev.line, f" (via call to {callee})")


def _find_cycles(edges: Dict[Tuple[str, str], str]) -> List[List[str]]:
    adj: Dict[str, List[str]] = {}
    for (a, b) in edges:
        adj.setdefault(a, []).append(b)
        adj.setdefault(b, [])
    cycles: List[List[str]] = []
    color: Dict[str, int] = {}
    stack: List[str] = []

    def dfs(u: str) -> None:
        color[u] = 1
        stack.append(u)
        for w in sorted(adj[u]):
            if color.get(w, 0) == 0:
                dfs(w)
            elif color.get(w) == 1:
                cycles.append(stack[stack.index(w):] + [w])
        stack.pop()
        color[u] = 2

    for node in sorted(adj):
        if color.get(node, 0) == 0:
            dfs(node)
    return cycles


def run(src_root: str) -> CheckResult:
    res = CheckResult(check="lock-order")
    registry = Registry()
    funcs: List[FuncDef] = []
    for path in scan_files(src_root):
        _pass_a(path, registry, funcs)

    method_index: Dict[str, List[Tuple[str, str]]] = {}
    for fn in funcs:
        sig = (fn.cls, fn.name)
        if sig not in method_index.setdefault(fn.name, []):
            method_index[fn.name].append(sig)

    class_names = {fn.cls for fn in funcs if fn.cls}
    class_names |= {d.cls for d in registry.decls}
    var_types: Dict[str, Optional[str]] = {}
    seen_token_lists = []
    for fn in funcs:
        if not any(fn.tokens is t for t in seen_token_lists):
            seen_token_lists.append(fn.tokens)
    for toks in seen_token_lists:
        collect_var_types(toks, class_names, var_types)

    warnings: List[Finding] = []
    fn_events = [(fn, _body_events(fn, registry, method_index, var_types,
                                   warnings))
                 for fn in funcs]
    res.findings.extend(warnings)

    # Transitive acquisition summaries (fixpoint over resolved calls).
    direct: Dict[Tuple[str, str], Set[str]] = {}
    calls: Dict[Tuple[str, str], Set[Tuple[str, str]]] = {}
    for fn, events in fn_events:
        sig = (fn.cls, fn.name)
        d = direct.setdefault(sig, set())
        c = calls.setdefault(sig, set())
        for ev in events:
            if ev.kind in ("acquire", "transient"):
                d.update(ev.mutexes)
            elif ev.kind == "call" and ev.callee:
                c.add(ev.callee)
    trans = {sig: set(m) for sig, m in direct.items()}
    changed = True
    while changed:
        changed = False
        for sig, callees in calls.items():
            for callee in callees:
                extra = trans.get(callee, set()) - trans[sig]
                if extra:
                    trans[sig].update(extra)
                    changed = True

    edges: Dict[Tuple[str, str], str] = {}
    for fn, events in fn_events:
        _replay(fn, events, trans, edges)

    cycles = _find_cycles(edges)
    for cycle in cycles:
        details = []
        for a, b in zip(cycle, cycle[1:]):
            details.append(f"{a} -> {b}   [{edges[(a, b)]}]")
        res.findings.append(Finding(
            "lock-order", "error", "", 0,
            "lock-order cycle: " + " -> ".join(cycle) +
            " — a thread holding the first mutex can block on the last "
            "while another thread holds them in the reverse order",
            details))
    if not cycles:
        res.proven.append(
            f"lock lattice acyclic: {len(registry.decls)} mutex(es), "
            f"{len(edges)} ordered edge(s)")
        for (a, b), ev in sorted(edges.items()):
            res.proven.append(f"{a} -> {b}   [{ev}]")
    return res
