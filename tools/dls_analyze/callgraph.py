"""Whole-program call graph from GCC -fcallgraph-info dumps.

Engine notes. GCC (>= 10) emits one VCG file per TU when compiled with
-fcallgraph-info; each function defined in the TU becomes a node titled
"<dumpbase>:<mangled>" whose label carries the demangled signature and
the definition's file:line:column, each call becomes an edge labelled
with its call site, and functions merely referenced become bare
"<mangled>" nodes (shape ellipse). Re-running every compile command from
compile_commands.json with the dump flag and merging the per-TU graphs
by mangled name yields the whole-program graph, including template and
inline bodies instantiated per TU. Indirect calls (function pointers,
virtual dispatch) carry no edge — the repo's hot paths are direct-call
only, which is part of the discipline this analyzer enforces by walking
what the compiler actually resolved.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import re
import subprocess
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from . import compiledb
from .compiledb import AnalyzerError

_QUOTED = r'"((?:[^"\\]|\\.)*)"'
_NODE_RE = re.compile(r'node:\s*\{\s*title:\s*' + _QUOTED +
                      r'(?:\s*label:\s*' + _QUOTED + r')?')
_EDGE_RE = re.compile(r'edge:\s*\{\s*sourcename:\s*' + _QUOTED +
                      r'\s*targetname:\s*' + _QUOTED +
                      r'(?:\s*label:\s*' + _QUOTED + r')?')


@dataclasses.dataclass
class Node:
    mangled: str
    demangled: str = ""
    file: str = ""
    line: int = 0
    defined: bool = False


@dataclasses.dataclass
class CallGraph:
    nodes: Dict[str, Node] = dataclasses.field(default_factory=dict)
    # caller mangled -> {callee mangled: "file:line:col" of one call site}
    edges: Dict[str, Dict[str, str]] = dataclasses.field(default_factory=dict)

    def add_node(self, node: Node) -> None:
        cur = self.nodes.get(node.mangled)
        if cur is None or (node.defined and not cur.defined):
            self.nodes[node.mangled] = node

    def add_edge(self, src: str, dst: str, site: str) -> None:
        self.edges.setdefault(src, {}).setdefault(dst, site)

    def name(self, mangled: str) -> str:
        node = self.nodes.get(mangled)
        if node and node.demangled:
            return node.demangled
        return mangled


def _title_key(title: str) -> str:
    """'path/x.cpp:_ZN3dls3fooEv' -> '_ZN3dls3fooEv'; bare titles pass."""
    if ":" in title:
        return title.rsplit(":", 1)[1]
    return title


def _parse_ci(text: str, graph: CallGraph) -> None:
    for m in _NODE_RE.finditer(text):
        title, label = m.group(1), m.group(2)
        key = _title_key(title)
        node = Node(mangled=key)
        if label:
            parts = label.split("\\n")
            node.demangled = parts[0]
            if len(parts) >= 2 and ":" in parts[1]:
                loc = parts[1].rsplit(":", 2)
                if len(loc) == 3:
                    node.file = loc[0]
                    try:
                        node.line = int(loc[1])
                    except ValueError:
                        node.line = 0
                    node.defined = True
        graph.add_node(node)
    for m in _EDGE_RE.finditer(text):
        src, dst, site = m.group(1), m.group(2), m.group(3) or ""
        graph.add_edge(_title_key(src), _title_key(dst), site)


def _run_one(entry: compiledb.Entry, tmp: Path, index: int) -> Path:
    tu_dir = tmp / str(index)
    tu_dir.mkdir(parents=True, exist_ok=True)
    obj = tu_dir / "tu.o"
    argv = compiledb.callgraph_argv(entry, str(obj))
    proc = subprocess.run(argv, cwd=entry.directory,
                          capture_output=True, text=True)
    if proc.returncode != 0:
        tail = "\n".join(proc.stderr.splitlines()[-12:])
        raise AnalyzerError(
            f"call-graph compile failed for {entry.file}:\n{tail}")
    ci = obj.with_suffix(".ci")
    if not ci.is_file():
        candidates = sorted(tu_dir.glob("*.ci"))
        if not candidates:
            raise AnalyzerError(
                f"{entry.file}: compiler produced no .ci dump "
                "(-fcallgraph-info unsupported by this compiler?)")
        ci = candidates[0]
    return ci


def _demangle(names: List[str]) -> Dict[str, str]:
    mangled = [n for n in names if n.startswith("_Z")]
    if not mangled:
        return {}
    try:
        proc = subprocess.run(["c++filt"], input="\n".join(mangled),
                              capture_output=True, text=True, check=True)
    except (OSError, subprocess.CalledProcessError):
        return {}
    out = proc.stdout.splitlines()
    return dict(zip(mangled, out))


def build(entries: List[compiledb.Entry], tmp: Path,
          jobs: int = 0) -> CallGraph:
    """Compile every entry with -fcallgraph-info and merge the dumps."""
    if not entries:
        raise AnalyzerError("no translation units selected from the "
                            "compile database")
    graph = CallGraph()
    workers = jobs if jobs > 0 else min(16, len(entries))
    with concurrent.futures.ThreadPoolExecutor(workers) as pool:
        futures = [pool.submit(_run_one, e, tmp, i)
                   for i, e in enumerate(entries)]
        ci_files = [f.result() for f in futures]
    for ci in ci_files:
        _parse_ci(ci.read_text(encoding="utf-8", errors="replace"), graph)
    for edges in graph.edges.values():
        for dst in edges:
            if dst not in graph.nodes:
                graph.nodes[dst] = Node(mangled=dst)
    _alias_ctor_clones(graph)
    # Demangle every _Z symbol with c++filt and prefer that over GCC's
    # node label: for template instantiations the VCG label is truncated
    # (it starts mid-signature at the parameter list), which would break
    # both waiver matching and path readability. c++filt names carry no
    # return type, matching how waiver patterns are written.
    filled = _demangle(sorted(graph.nodes))
    for key, nice in filled.items():
        graph.nodes[key].demangled = nice
    for node in graph.nodes.values():
        if not node.demangled:
            node.demangled = node.mangled
    return graph


_CLONE_RE = re.compile(r"(C1|D1|D0)(?=[EI])")
_CLONE_BASE = {"C1": "C2", "D1": "D2", "D0": "D2"}


def _alias_ctor_clones(graph: CallGraph) -> None:
    """GCC emits the complete-object constructor (C1) / destructor (D1,
    D0) as an alias of the base-object clone (C2/D2) when there are no
    virtual bases: the call edge targets C1 but only C2 carries a body
    and outgoing edges. Redirect edges into bodyless clone symbols to
    the defined twin so the walk does not dead-end at an alias."""
    alias: Dict[str, str] = {}
    for key, node in graph.nodes.items():
        if node.defined or graph.edges.get(key):
            continue  # has a body of its own; not an alias
        for m in _CLONE_RE.finditer(key):
            twin = key[:m.start()] + _CLONE_BASE[m.group(1)] + key[m.end():]
            twin_node = graph.nodes.get(twin)
            if twin_node and (twin_node.defined or graph.edges.get(twin)):
                alias[key] = twin
                break
    if not alias:
        return
    for edges in graph.edges.values():
        for dst in list(edges):
            target = alias.get(dst)
            if target and target not in edges:
                edges[target] = edges[dst]


def shortest_path(graph: CallGraph, root: str,
                  is_sink, is_pruned) -> Optional[List[Tuple[str, str]]]:
    """BFS from `root`; returns [(mangled, callsite-into-it), ...] ending
    at the first sink, or None if no sink is reachable. Pruned nodes are
    not expanded and cannot be sinks (that is what a waiver means)."""
    parent: Dict[str, Tuple[str, str]] = {root: ("", "")}
    queue = [root]
    while queue:
        cur = queue.pop(0)
        for dst, site in sorted(graph.edges.get(cur, {}).items()):
            if dst in parent:
                continue
            if is_pruned(dst):
                continue
            parent[dst] = (cur, site)
            if is_sink(dst):
                path = [(dst, site)]
                node = cur
                while node != root:
                    prev, psite = parent[node]
                    path.append((node, psite))
                    node = prev
                path.append((root, ""))
                path.reverse()
                return path
            queue.append(dst)
    return None
