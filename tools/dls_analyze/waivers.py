"""Waiver file parsing and matching.

Format (see tools/dls_analyze/waivers.conf): one waiver per line,

    <check> <glob-pattern> -- <reason>

`check` is the check name the waiver applies to (`noalloc`, ...).
The glob matches the DEMANGLED name of a function (spaces allowed — the
pattern runs to the ` -- ` separator); mangled names are matched too so
raw symbols like __cxa_* can be named directly. The reason is mandatory:
a waiver without a documented reason is a lie waiting to happen.
"""

from __future__ import annotations

import dataclasses
import fnmatch
from pathlib import Path
from typing import List

from .compiledb import AnalyzerError


@dataclasses.dataclass
class Waiver:
    check: str
    pattern: str
    reason: str
    origin: str  # "<built-in>" or "file:line"


def parse_file(path: str) -> List[Waiver]:
    waivers = []
    text = Path(path).read_text(encoding="utf-8")
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if " -- " not in line:
            raise AnalyzerError(
                f"{path}:{lineno}: waiver missing ' -- <reason>' separator")
        head, reason = line.split(" -- ", 1)
        parts = head.split(None, 1)
        if len(parts) != 2 or not reason.strip():
            raise AnalyzerError(
                f"{path}:{lineno}: expected '<check> <pattern> -- <reason>'")
        waivers.append(Waiver(parts[0], parts[1].strip(), reason.strip(),
                              f"{path}:{lineno}"))
    return waivers


def strip_return_type(demangled: str) -> str:
    """'void dls::foo(int)' -> 'dls::foo(int)'. GCC's call-graph labels
    lead with the return type; waiver patterns name the function. The
    name starts after the last top-level space before the parameter
    list (spaces inside template argument lists don't count)."""
    paren = -1
    depth = 0
    for i, c in enumerate(demangled):
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
        elif c == "(" and depth == 0:
            paren = i
            break
    if paren <= 0:
        return demangled
    head = demangled[:paren]
    depth = 0
    cut = -1
    for i, c in enumerate(head):
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
        elif c == " " and depth == 0:
            cut = i
    return demangled[cut + 1:] if cut >= 0 else demangled


class WaiverSet:
    def __init__(self, waivers: List[Waiver], check: str):
        self._waivers = [w for w in waivers if w.check == check]

    def match(self, demangled: str, mangled: str = "") -> Waiver | None:
        stripped = strip_return_type(demangled)
        for w in self._waivers:
            if fnmatch.fnmatchcase(demangled, w.pattern):
                return w
            if stripped != demangled and \
                    fnmatch.fnmatchcase(stripped, w.pattern):
                return w
            if mangled and fnmatch.fnmatchcase(mangled, w.pattern):
                return w
        return None
