// Seeded violation for the fp-fence check: an fma() call outside the
// sanctioned kernel header. The analyzer must flag the fused rounding.
#include <cmath>

namespace fixture {

double planted_fused(double a, double b, double c) {
  return std::fma(a, b, c);  // planted: fused multiply-add
}

}  // namespace fixture
