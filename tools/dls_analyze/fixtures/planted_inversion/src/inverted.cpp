// Seeded violation for the lock-order check: two methods of the same
// class acquire first_ and second_ in opposite orders. The analyzer
// must report the cycle with both acquisition sites as evidence.
#include <mutex>

namespace fixture {

class Inverted {
 public:
  int forward() {
    std::lock_guard<std::mutex> outer(first_);
    std::lock_guard<std::mutex> inner(second_);
    return ++calls_;
  }

  int backward() {
    std::lock_guard<std::mutex> outer(second_);  // planted: inverted order
    std::lock_guard<std::mutex> inner(first_);
    return ++calls_;
  }

 private:
  std::mutex first_;
  std::mutex second_;
  int calls_ = 0;
};

}  // namespace fixture
