// Seeded violation for the no-alloc check: a DLS_HOT_NOALLOC function
// that copy-constructs a std::vector. The analyzer must refuse to prove
// it and print a shortest call path ending at operator new.
#include <vector>

#include "common/discipline.hpp"

namespace fixture {

DLS_HOT_NOALLOC
double planted_alloc_sum(const std::vector<double>& xs) {
  std::vector<double> copy(xs);  // planted: the copy allocates
  double total = 0.0;
  for (double x : copy) {
    total += x;
  }
  return total;
}

}  // namespace fixture
