"""compile_commands.json loading and per-TU re-invocation argv."""

from __future__ import annotations

import dataclasses
import json
import os
import shlex
from pathlib import Path
from typing import List


class AnalyzerError(RuntimeError):
    """Infrastructure failure (not a finding): bad DB, compiler error."""


@dataclasses.dataclass
class Entry:
    directory: str
    file: str
    args: List[str]

    def resolved_file(self) -> Path:
        p = Path(self.file)
        if not p.is_absolute():
            p = Path(self.directory) / p
        return p.resolve()


def load(build_dir: str) -> List[Entry]:
    db = Path(build_dir) / "compile_commands.json"
    if not db.is_file():
        raise AnalyzerError(
            f"{db}: not found — configure the build first "
            "(cmake -B {build_dir} -S . exports the compile database)")
    with open(db, encoding="utf-8") as fh:
        raw = json.load(fh)
    entries = []
    for item in raw:
        if "arguments" in item:
            args = list(item["arguments"])
        else:
            args = shlex.split(item["command"])
        entries.append(Entry(item["directory"], item["file"], args))
    return entries


def src_entries(entries: List[Entry], src_root: str) -> List[Entry]:
    """The project TUs: sources under src_root, one entry per file."""
    root = Path(src_root).resolve()
    seen = set()
    out = []
    for e in entries:
        f = e.resolved_file()
        if root not in f.parents:
            continue
        if f in seen:  # objects built into several targets
            continue
        seen.add(f)
        out.append(e)
    return out


def callgraph_argv(entry: Entry, out_obj: str) -> List[str]:
    """Rebuild the TU's command line for a call-graph dump compile.

    The proof runs against the production configuration: contract
    auditors (DLS_CHECK_LEVEL) and instrumentation (DLS_OBS_LEVEL) are
    forced to 0 — both layers have their own compile-time gates and are
    allowed to allocate when compiled in. -O0 keeps every call out of
    line so the dumped graph is the complete, uninlined one.
    """
    args: List[str] = []
    skip_next = False
    for a in entry.args:
        if skip_next:
            skip_next = False
            continue
        if a == "-o":
            skip_next = True
            continue
        if a.startswith("-o") and len(a) > 2 and not a.startswith("-of"):
            continue
        if a.startswith("-DDLS_CHECK_LEVEL") or a.startswith("-DDLS_OBS_LEVEL"):
            continue
        if a.startswith("-fcallgraph-info"):
            continue
        args.append(a)
    args += [
        "-DDLS_CHECK_LEVEL=0",
        "-DDLS_OBS_LEVEL=0",
        "-O0",
        "-w",
        "-fcallgraph-info",
        "-o",
        out_obj,
    ]
    return args


def compiler_flags(entry: Entry) -> List[str]:
    """The flag tokens of an entry (everything but compiler and file)."""
    flags = []
    file_base = os.path.basename(entry.file)
    for a in entry.args[1:]:
        if os.path.basename(a) == file_base:
            continue
        flags.append(a)
    return flags
