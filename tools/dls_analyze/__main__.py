"""CLI: python3 tools/dls_analyze --build-dir build [options]

Exit codes: 0 clean, 1 findings, 2 infrastructure error (bad compile
database, compiler failure, unparseable waiver file).
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from pathlib import Path

if __package__ in (None, ""):  # executed as `python3 tools/dls_analyze`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    __package__ = "dls_analyze"  # noqa: A001

from dls_analyze import (callgraph, compiledb, fpfence, locks, noalloc,
                         report, waivers)

ALL_CHECKS = ("noalloc", "locks", "fpfence")


def main(argv=None) -> int:
    repo = Path(__file__).resolve().parent.parent.parent
    parser = argparse.ArgumentParser(
        prog="dls_analyze",
        description="Whole-program discipline analyzer (no-alloc "
                    "reachability, lock-order lattice, FP-determinism "
                    "fence). See docs/STATIC_ANALYSIS.md.")
    parser.add_argument("--build-dir", default=str(repo / "build"),
                        help="build tree holding compile_commands.json")
    parser.add_argument("--src", default=str(repo / "src"),
                        help="source root to analyze")
    parser.add_argument("--checks", default=",".join(ALL_CHECKS),
                        help="comma-separated subset of: "
                             + ", ".join(ALL_CHECKS))
    parser.add_argument("--waivers",
                        default=str(Path(__file__).resolve().parent
                                    / "waivers.conf"),
                        help="waiver file ('' to run with built-ins only)")
    parser.add_argument("--json", default="",
                        help="also write findings to this JSON file")
    parser.add_argument("--jobs", type=int,
                        default=max(2, (os.cpu_count() or 4) - 1),
                        help="parallel call-graph compiles")
    args = parser.parse_args(argv)

    checks = [c.strip() for c in args.checks.split(",") if c.strip()]
    unknown = set(checks) - set(ALL_CHECKS)
    if unknown:
        parser.error(f"unknown check(s): {', '.join(sorted(unknown))}")

    try:
        extra_waivers = []
        if args.waivers:
            extra_waivers = waivers.parse_file(args.waivers)

        results = []
        entries = None
        if "noalloc" in checks or "fpfence" in checks:
            entries = compiledb.src_entries(
                compiledb.load(args.build_dir), args.src)
        if "noalloc" in checks:
            with tempfile.TemporaryDirectory(prefix="dls_analyze_") as tmp:
                graph = callgraph.build(entries, Path(tmp), jobs=args.jobs)
            results.append(noalloc.run(args.src, graph, extra_waivers))
        if "locks" in checks:
            results.append(locks.run(args.src))
        if "fpfence" in checks:
            results.append(fpfence.run(args.src, entries))
    except compiledb.AnalyzerError as err:
        print(f"dls_analyze: error: {err}", file=sys.stderr)
        return 2

    print(report.render_text(results))
    if args.json:
        report.to_json(results, args.json)
    return 1 if any(res.errors() for res in results) else 0


if __name__ == "__main__":
    sys.exit(main())
