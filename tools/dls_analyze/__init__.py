"""Whole-program discipline analyzer for the dlsmech tree.

Three checks, all driven by the build's compile_commands.json:

  no-alloc   -- prove DLS_HOT_NOALLOC functions never reach an allocator
  lock-order -- extract every mutex acquisition, fail on ordering cycles
  fp-fence   -- confine FMA/contraction to the sanctioned kernel header

Run as `python3 tools/dls_analyze --help`. See docs/STATIC_ANALYSIS.md.
"""

__all__ = [
    "compiledb",
    "callgraph",
    "cpplex",
    "noalloc",
    "locks",
    "fpfence",
    "report",
    "waivers",
]
