#!/usr/bin/env python3
"""Repo-specific lint rules that clang-tidy cannot express.

Rules (library code = everything under src/):

  pragma-once          every header under src/ must contain #pragma once
                       near the top of the file.
  seeded-rng-only      no rand()/srand()/time(nullptr)/std::random_device
                       in src/ — experiments must be reproducible
                       bit-for-bit, so all randomness flows through the
                       seeded common::Rng streams.
  no-stdout-in-library no std::cout/std::cerr/printf in src/ — library
                       code reports through return values, exceptions
                       and caller-provided std::ostream&; only
                       examples/, bench/ and tools/ own a terminal.
  no-using-namespace   no `using namespace std` anywhere (headers or
                       sources) — it leaks into every includer.
  include-hygiene      no <iostream> in src/ headers (it drags static
                       initializers and the whole locale machinery into
                       every includer; sources may include it, headers
                       take std::ostream& via <iosfwd>), and no
                       parent-relative `#include "../"` paths in src/ —
                       includes are rooted at src/ so files can move
                       without rewriting their includers.

A finding can be waived for one line with a trailing comment naming the
rule, e.g. `// lint:allow(no-stdout-in-library): CLI entry point`.
The policy for adding waivers is documented in docs/STATIC_ANALYSIS.md.

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".h"}

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z0-9-]+)\)")

# Each content rule: (name, regex, message). Applied per line, with
# string/comment contents left in place — the patterns are specific
# enough that prose mentions (docs are not linted) do not trip them.
CONTENT_RULES = [
    (
        "seeded-rng-only",
        re.compile(r"\b(?:s?rand\s*\(|time\s*\(\s*(?:nullptr|NULL)\s*\)"
                   r"|std::random_device)"),
        "unseeded randomness; use the seeded common::Rng streams",
    ),
    (
        "no-stdout-in-library",
        re.compile(r"\bstd::c(?:out|err)\b|\b(?:f)?printf\s*\("),
        "library code must not write to the terminal; take std::ostream&",
    ),
    (
        "no-using-namespace",
        re.compile(r"\busing\s+namespace\s+std\b"),
        "`using namespace std` leaks into every includer",
    ),
]

# Which rules apply outside src/ (library-only rules are scoped there).
EVERYWHERE_RULES = {"no-using-namespace"}

# include-hygiene patterns (src/ only; the header half applies to
# .hpp/.h, the parent-relative half to every src/ file).
IOSTREAM_INCLUDE_RE = re.compile(r'#\s*include\s*<iostream>')
PARENT_INCLUDE_RE = re.compile(r'#\s*include\s*"\.\./')


def iter_source_files(root: Path) -> list[Path]:
    files: list[Path] = []
    for top in ("src", "tests", "bench", "examples"):
        base = root / top
        if not base.is_dir():
            continue
        files.extend(
            p for p in sorted(base.rglob("*"))
            if p.suffix in SOURCE_SUFFIXES and p.is_file()
        )
    return files


def lint_file(path: Path, root: Path) -> list[str]:
    rel = path.relative_to(root)
    in_library = rel.parts[0] == "src"
    try:
        text = path.read_text(encoding="utf-8")
    except UnicodeDecodeError:
        return [f"{rel}:1: [encoding] file is not valid UTF-8"]

    findings: list[str] = []
    lines = text.splitlines()

    if in_library and path.suffix in {".hpp", ".h"}:
        head = lines[:30]
        if not any(line.strip() == "#pragma once" for line in head):
            findings.append(
                f"{rel}:1: [pragma-once] header must start with "
                "#pragma once (within the first 30 lines)"
            )

    for lineno, line in enumerate(lines, start=1):
        waived = {m.group(1) for m in ALLOW_RE.finditer(line)}
        if in_library and "include-hygiene" not in waived:
            if path.suffix in {".hpp", ".h"} and \
                    IOSTREAM_INCLUDE_RE.search(line):
                findings.append(
                    f"{rel}:{lineno}: [include-hygiene] <iostream> in a "
                    "header drags static initializers into every "
                    "includer; take std::ostream& and include <iosfwd>"
                )
            if PARENT_INCLUDE_RE.search(line):
                findings.append(
                    f"{rel}:{lineno}: [include-hygiene] parent-relative "
                    "include; root the path at src/ instead"
                )
        for name, pattern, message in CONTENT_RULES:
            if name not in EVERYWHERE_RULES and not in_library:
                continue
            if name in waived:
                continue
            if pattern.search(line):
                findings.append(f"{rel}:{lineno}: [{name}] {message}")
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files to lint (default: all first-party sources)",
    )
    args = parser.parse_args(argv)

    if args.paths:
        files = [p.resolve() for p in args.paths]
        for p in files:
            if not p.is_file():
                print(f"lint_project: no such file: {p}", file=sys.stderr)
                return 2
    else:
        files = iter_source_files(REPO_ROOT)

    findings: list[str] = []
    for path in files:
        findings.extend(lint_file(path, REPO_ROOT))

    for finding in findings:
        print(finding)
    if findings:
        print(
            f"lint_project: {len(findings)} finding(s) in "
            f"{len(files)} files",
            file=sys.stderr,
        )
        return 1
    print(f"lint_project: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
