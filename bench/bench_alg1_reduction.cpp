// Experiment FIG3/ALG1 — Figure 3 and Algorithm 1: the recursive
// equivalent-processor reduction.
//
// Part 1 prints the reduction trace for a small chain (the sequence of
// collapses Figure 3 illustrates) and validates eq. (2.4) at every step.
// Part 2 is a google-benchmark of Algorithm 1 itself: the solver is a
// linear-time recurrence, so cost must scale ~O(m) out to a million
// processors.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "dlt/linear.hpp"
#include "net/networks.hpp"

namespace {

void print_reduction_trace() {
  std::cout << "=== ALG1: equivalent-processor reduction trace ===\n\n";
  const dls::net::LinearNetwork network({1.0, 0.8, 1.2, 0.6, 1.5},
                                        {0.10, 0.15, 0.20, 0.30});
  const auto solution = dls::dlt::solve_linear_boundary(network);

  dls::common::Table table({{"step"},
                            {"collapse", dls::common::Align::kLeft},
                            {"alpha_hat_i"},
                            {"w_bar_{i+1} (tail)"},
                            {"z_{i+1}"},
                            {"w_bar_i (result)"}});
  int step = 1;
  for (const auto& s : solution.steps) {
    table.add_row({step++,
                   "P" + std::to_string(s.index) + " + equiv(P" +
                       std::to_string(s.index + 1) + "..P4)",
                   dls::common::Cell(s.alpha_hat, 6),
                   dls::common::Cell(s.tail_w, 6),
                   dls::common::Cell(s.link_z, 6),
                   dls::common::Cell(s.equivalent_w, 6)});
  }
  table.print(std::cout);
  std::cout << "\nfinal equivalent processor: w_bar_0 = "
            << solution.equivalent_w[0]
            << " = makespan of the whole chain (eq. 2.4)\n\n";
}

void solver_benchmark(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dls::common::Rng rng(7);
  const dls::net::LinearNetwork network =
      dls::net::LinearNetwork::random(n, rng, 0.5, 5.0, 0.05, 0.5);
  for (auto _ : state) {
    auto solution = dls::dlt::solve_linear_boundary(network);
    benchmark::DoNotOptimize(solution.makespan);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}

void finish_times_benchmark(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dls::common::Rng rng(7);
  const dls::net::LinearNetwork network =
      dls::net::LinearNetwork::random(n, rng, 0.5, 5.0, 0.05, 0.5);
  const auto solution = dls::dlt::solve_linear_boundary(network);
  for (auto _ : state) {
    auto times = dls::dlt::finish_times(network, solution.alpha);
    benchmark::DoNotOptimize(times.data());
  }
}

BENCHMARK(solver_benchmark)
    ->RangeMultiplier(8)
    ->Range(8, 1 << 20)
    ->Complexity(benchmark::oN);
BENCHMARK(finish_times_benchmark)->RangeMultiplier(16)->Range(16, 1 << 20);

}  // namespace

int main(int argc, char** argv) {
  print_reduction_trace();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
