// Experiment THM5.3b — Lemma 5.3 case (ii): utility as a function of the
// actual execution rate w̃_i >= t_i under a truthful bid.
//
// Reproduction targets: utility is maximal at full-capacity execution
// (w̃ = t) and non-increasing in the slowdown; for interior processors
// the penalty starts immediately (ŵ_j = α̂_j w̃_j kicks in as soon as
// w̃ > w), because the mechanism verifies actual rates with the
// tamper-proof meter.
#include <iostream>

#include "analysis/experiments.hpp"
#include "analysis/sweep.hpp"
#include "common/ascii_plot.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "net/networks.hpp"

int main() {
  std::cout << "=== THM5.3b: utility vs execution speed "
               "(full capacity dominates) ===\n\n";
  const dls::core::MechanismConfig config;
  const dls::net::LinearNetwork network({1.0, 1.2, 0.8, 1.5},
                                        {0.2, 0.15, 0.25});

  // ---- Curves for every strategic position.
  std::vector<dls::common::Series> series;
  const char markers[] = {'1', '2', '3'};
  const auto mults = dls::analysis::linspace(1.0, 2.5, 31);
  for (std::size_t i = 1; i < network.size(); ++i) {
    const auto curve =
        dls::analysis::utility_vs_speed(network, i, mults, config);
    dls::common::Series s;
    s.name = "P" + std::to_string(i);
    s.marker = markers[i - 1];
    s.xs = mults;
    s.ys = curve.utilities;
    series.push_back(std::move(s));
  }
  dls::common::plot(std::cout, series,
                    {.width = 66,
                     .height = 14,
                     .x_label = "slowdown factor w̃/t (1 = full capacity)",
                     .y_label = "utility",
                     .title = "utility vs actual execution rate"});
  std::cout << '\n';

  // ---- Table at selected slowdowns.
  {
    dls::common::Table table({{"slowdown"}, {"U_1"}, {"U_2"}, {"U_3"}});
    for (const double f : {1.0, 1.1, 1.25, 1.5, 2.0, 2.5}) {
      std::vector<dls::common::Cell> row = {dls::common::Cell(f, 2)};
      for (std::size_t i = 1; i < network.size(); ++i) {
        const auto curve = dls::analysis::utility_vs_speed(
            network, i, std::vector<double>{f}, config);
        row.push_back(dls::common::Cell(curve.utilities[0], 6));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  // ---- Randomized monotonicity certification.
  {
    dls::common::Rng rng(8181);
    int violations = 0;
    dls::common::OnlineStats loss_at_2x;
    constexpr int kInstances = 200;
    for (int rep = 0; rep < kInstances; ++rep) {
      const auto m = static_cast<std::size_t>(rng.uniform_int(1, 12));
      const auto net = dls::net::LinearNetwork::random(
          m + 1, rng, dls::analysis::kWLo, dls::analysis::kWHi,
          dls::analysis::kZLo, dls::analysis::kZHi);
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(m)));
      const auto curve = dls::analysis::utility_vs_speed(
          net, i, dls::analysis::linspace(1.0, 2.0, 21), config);
      for (std::size_t k = 1; k < curve.utilities.size(); ++k) {
        if (curve.utilities[k] > curve.utilities[k - 1] + 1e-9) {
          ++violations;
          break;
        }
      }
      loss_at_2x.add(curve.utility_at_truth - curve.utilities.back());
    }
    std::cout << "randomized monotonicity: " << kInstances
              << " curves, violations = " << violations << " ("
              << (violations == 0 ? "PASS" : "FAIL") << ")\n"
              << "utility lost by running at half speed: mean "
              << loss_at_2x.mean() << ", max " << loss_at_2x.max() << '\n';
  }
  return 0;
}
