// Experiment ABLATION — each design element of DLS-LBL is load-bearing.
//
// The mechanism stacks three defences; removing any one of them breaks a
// specific theorem, and this bench measures exactly which:
//   1. verification (the tamper-proof meter feeding ŵ_j, eqs. 4.10-4.11)
//      — without it, executing slower than bid costs nothing (Lemma 5.3
//      case (ii) fails);
//   2. fines F with reporting rewards — without them, load shedding
//      becomes strictly profitable (Theorem 5.1 fails);
//   3. the audit F/q — without audits, overcharging is free money
//      (Lemma 5.1 case (iv) fails);
// plus the known non-guarantee: a shedding predecessor colluding with a
// silent successor defeats the grievance channel (the paper claims only
// unilateral strategyproofness).
#include <iostream>

#include "agents/agent.hpp"
#include "common/table.hpp"
#include "net/networks.hpp"
#include "protocol/runner.hpp"

namespace {

using dls::agents::Behavior;
using dls::agents::Population;
using dls::agents::StrategicAgent;

const dls::net::LinearNetwork& network() {
  static const dls::net::LinearNetwork net({1.0, 1.2, 0.8, 1.5},
                                           {0.2, 0.15, 0.25});
  return net;
}

Population population(std::initializer_list<std::pair<std::size_t, Behavior>>
                          overrides = {}) {
  std::vector<StrategicAgent> agents;
  for (std::size_t i = 1; i < network().size(); ++i) {
    agents.push_back(StrategicAgent{i, network().w(i), Behavior::truthful()});
  }
  Population pop(std::move(agents));
  for (const auto& [index, behavior] : overrides) {
    pop.agent(index).behavior = behavior;
  }
  return pop;
}

double utility(const dls::protocol::RunReport& report, std::size_t i) {
  return report.processors[i].utility;
}

}  // namespace

int main() {
  std::cout << "=== ABLATION: which defence stops which deviation ===\n\n";
  using dls::common::Align;
  using dls::common::Cell;
  using dls::common::Table;

  Table table({{"configuration", Align::kLeft},
               {"deviation", Align::kLeft},
               {"U honest"},
               {"U deviant"},
               {"deviation profitable?", Align::kLeft}});

  // --- 1. Verification on/off vs slow execution. -----------------------
  for (const bool verify : {true, false}) {
    dls::protocol::ProtocolOptions options;
    options.mechanism.verify_actual_rates = verify;
    const auto honest = run_protocol(network(), population(), options);
    const auto slow = run_protocol(
        network(), population({{2, Behavior::slow_execution(1.6)}}),
        options);
    table.add_row({verify ? "full mechanism" : "NO verification (ŵ from bids)",
                   "slow execution 1.6x at P2",
                   Cell(utility(honest, 2), 4), Cell(utility(slow, 2), 4),
                   utility(slow, 2) > utility(honest, 2) - 1e-9
                       ? (verify ? "YES (BUG)" : "yes — Lemma 5.3(ii) gone")
                       : "no"});
  }

  // --- 2. Fines on/off vs load shedding. --------------------------------
  for (const bool fines : {true, false}) {
    dls::protocol::ProtocolOptions options;
    options.fines_enabled = fines;
    const auto honest = run_protocol(network(), population(), options);
    const auto shed = run_protocol(
        network(), population({{1, Behavior::load_shedder(0.5)}}), options);
    table.add_row({fines ? "full mechanism" : "NO fines/rewards",
                   "shed 50% at P1", Cell(utility(honest, 1), 4),
                   Cell(utility(shed, 1), 4),
                   utility(shed, 1) > utility(honest, 1) + 1e-9
                       ? (fines ? "YES (BUG)" : "yes — Theorem 5.1 gone")
                       : "no"});
  }

  // --- 3. Audits on/off vs overcharging. --------------------------------
  for (const double q : {1.0, 0.0}) {
    dls::protocol::ProtocolOptions options;
    options.mechanism.audit_probability = q;
    const auto honest = run_protocol(network(), population(), options);
    const auto cheat = run_protocol(
        network(), population({{3, Behavior::overcharger(0.4)}}), options);
    table.add_row({q > 0.0 ? "full mechanism (audited round)"
                           : "NO audits (q=0)",
                   "overcharge +0.4 at P3", Cell(utility(honest, 3), 4),
                   Cell(utility(cheat, 3), 4),
                   utility(cheat, 3) > utility(honest, 3) + 1e-9
                       ? (q > 0.0 ? "YES (BUG)" : "yes — case (iv) gone")
                       : "no"});
  }

  // --- 4. The collusion non-guarantee. -----------------------------------
  {
    dls::protocol::ProtocolOptions options;
    const auto honest = run_protocol(network(), population(), options);
    // P2 sheds onto the terminal P3, which stays silent.
    const auto collusion = run_protocol(
        network(),
        population({{2, Behavior::load_shedder(0.5)},
                    {3, Behavior::colluding_victim()}}),
        options);
    const double pair_honest = utility(honest, 2) + utility(honest, 3);
    const double pair_collude = utility(collusion, 2) + utility(collusion, 3);
    table.add_row({"full mechanism", "P2 sheds 50%, P3 silent (coalition)",
                   Cell(pair_honest, 4), Cell(pair_collude, 4),
                   pair_collude > pair_honest + 1e-9
                       ? "yes — collusion is outside the paper's guarantee"
                       : "no"});
  }

  table.print(std::cout);
  std::cout << "\nReading: rows marked \"gone\" show the theorem that "
               "disappears with the ablated defence;\nthe final row "
               "documents the known unilateral-only limitation.\n";
  return 0;
}
