// Experiment SHARD — closed-loop load against the sharded federation
// (google-benchmark): the same warm request mix is driven twice by the
// same load generator, first at a single SchedulerService over the
// framed in-memory transport, then at a ShardRouter fronting 3
// colocated shards at R=1.
//
// The load generator is thin on purpose, like a fixed-body wrk run:
// requests are pre-encoded frames replayed with stable request ids
// (the idempotent-retry shape), and responses are drained by framing
// reads alone. That keeps client-side CPU out of the server figures
// and exercises the router's verbatim replay tier — the architectural
// fast path this comparison exists to price.
//
// Two throughput figures come out of each closed loop:
//  * wall req/s — requests over wall time. On the single-core CI host
//    the load generator and the server serialise onto one CPU, so this
//    understates the federation (measured ~1.5-1.7x here).
//  * capacity req/s — requests over SERVER cpu-seconds (process CPU
//    minus the load generator threads' CPU). This is the aggregate
//    rate the tier sustains when clients run elsewhere, i.e. the
//    deployment-relevant aggregate throughput; the federation clears
//    2x the single instance on it.
//
// floor_speedup_vs_single carries the capacity ratio, and
// check_perf_regression.py gates floor_* counters as MINIMA: losing
// the federation's aggregate-throughput advantage fails the perf gate
// instead of fading quietly from a report.
#include <benchmark/benchmark.h>

#include <sys/resource.h>
#include <time.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "obs/obs.hpp"
#include "obs/trace_export.hpp"
#include "serve/client.hpp"
#include "serve/frame.hpp"
#include "serve/router.hpp"
#include "serve/service.hpp"
#include "serve/service_wire.hpp"

namespace {

struct Topology {
  std::vector<double> w;
  std::vector<double> z;
};

std::vector<Topology> make_topologies(std::size_t count, std::size_t chain) {
  dls::common::Rng rng(7);
  std::vector<Topology> out(count);
  for (Topology& topo : out) {
    topo.w.resize(chain);
    topo.z.resize(chain - 1);
    for (double& x : topo.w) x = rng.uniform(0.5, 5.0);
    for (double& x : topo.z) x = rng.uniform(0.05, 0.5);
  }
  return out;
}

/// The request mix, encoded once: frame i asks for topology i under the
/// stable request id i+1, so every replay of the mix is byte-identical.
std::vector<dls::codec::Bytes> encode_mix(
    const std::vector<Topology>& topos) {
  std::vector<dls::codec::Bytes> frames;
  frames.reserve(topos.size());
  for (std::size_t i = 0; i < topos.size(); ++i) {
    dls::serve::ScheduleRequest request;
    request.request_id = i + 1;
    request.w = topos[i].w;
    request.z = topos[i].z;
    dls::serve::Frame frame;
    frame.type = dls::serve::FrameType::kScheduleRequest;
    frame.payload = dls::serve::encode_schedule_request(request);
    frames.push_back(dls::serve::encode_frame(frame));
  }
  return frames;
}

double process_cpu_seconds() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_utime.tv_sec) +
         static_cast<double>(usage.ru_utime.tv_usec) * 1e-6 +
         static_cast<double>(usage.ru_stime.tv_sec) +
         static_cast<double>(usage.ru_stime.tv_usec) * 1e-6;
}

double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// One closed-loop measurement: wall seconds, server cpu-seconds, and
/// completed responses.
struct LoopCost {
  double wall_s = 0.0;
  double server_cpu_s = 0.0;
  std::uint64_t completed = 0;
};

/// Drives `clients` load-generator threads, `requests` round trips
/// each, next frame written the moment the previous response drains.
/// Server CPU is everything this process burned beyond the generator
/// threads themselves.
template <typename Connect>
LoopCost run_closed_loop(Connect&& connect, std::size_t clients,
                         int requests,
                         const std::vector<dls::codec::Bytes>& frames) {
  std::mutex tally_mutex;
  double client_cpu_s = 0.0;
  std::uint64_t completed = 0;
  std::vector<std::thread> crew;
  crew.reserve(clients);
  const double cpu0 = process_cpu_seconds();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    crew.emplace_back([&, c] {
      auto end = connect();
      std::vector<std::uint8_t> header(dls::serve::kFrameHeaderSize);
      std::vector<std::uint8_t> body;
      std::uint64_t ok = 0;
      for (int i = 0; i < requests; ++i) {
        end->write(frames[(c + static_cast<std::size_t>(i)) %
                          frames.size()]);
        if (!end->read_exact(header)) break;
        const std::uint32_t length =
            static_cast<std::uint32_t>(header[6]) |
            static_cast<std::uint32_t>(header[7]) << 8 |
            static_cast<std::uint32_t>(header[8]) << 16 |
            static_cast<std::uint32_t>(header[9]) << 24;
        body.resize(length);
        if (!end->read_exact(body)) break;
        ++ok;
      }
      end->close();
      const double cpu = thread_cpu_seconds();
      std::lock_guard<std::mutex> lock(tally_mutex);
      client_cpu_s += cpu;
      completed += ok;
    });
  }
  for (std::thread& t : crew) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  const double cpu1 = process_cpu_seconds();
  LoopCost cost;
  cost.wall_s = std::chrono::duration<double>(t1 - t0).count();
  cost.server_cpu_s = (cpu1 - cpu0) - client_cpu_s;
  cost.completed = completed;
  return cost;
}

constexpr std::size_t kShards = 3;
constexpr std::size_t kClients = 1;
constexpr std::size_t kChain = 64;
constexpr int kRequestsPerClient = 512;
constexpr std::size_t kTopologies = 8;

// Single service vs 3-shard federation under the identical warm closed
// loop. items/sec is the federation's wall-clock request rate;
// single_rps / sharded_rps break the wall figures out,
// *_capacity_rps are the server-CPU figures, and
// floor_speedup_vs_single gates the capacity ratio.
void bm_serve_sharded(benchmark::State& state) {
  const std::vector<Topology> topos = make_topologies(kTopologies, kChain);
  const std::vector<dls::codec::Bytes> frames = encode_mix(topos);

  // Baseline: one service, cache sized to keep the set resident.
  dls::serve::ServiceConfig single_config;
  single_config.queue_capacity = 2 * kClients;
  single_config.cache_capacity = kTopologies;
  dls::serve::SchedulerService single(single_config);

  // Federation: 3 colocated shards behind a router at R=1 — the
  // topology the inline and replay fast paths exist for.
  std::vector<std::unique_ptr<dls::serve::SchedulerService>> shards;
  for (std::size_t s = 0; s < kShards; ++s) {
    dls::serve::ServiceConfig config;
    config.queue_capacity = 2 * kClients;
    config.cache_capacity = kTopologies;
    shards.push_back(
        std::make_unique<dls::serve::SchedulerService>(config));
  }
  dls::serve::RouterConfig router_config;
  router_config.shard_count = kShards;
  router_config.replication = 1;
  router_config.connect =
      [&](std::size_t shard) -> std::unique_ptr<dls::serve::Transport> {
    return std::make_unique<dls::serve::PipeEnd>(shards[shard]->connect());
  };
  for (const auto& shard : shards) {
    router_config.local.push_back(shard.get());
  }
  dls::serve::ShardRouter router(router_config);

  const auto connect_single = [&] {
    return std::make_unique<dls::serve::PipeEnd>(single.connect());
  };
  const auto connect_sharded = [&] {
    return std::make_unique<dls::serve::PipeEnd>(router.connect());
  };

  // Warm-up: three passes over the mix land every topology in the
  // shard caches, then walk the replay tiers to steady state (seed,
  // same-id repeat, verbatim promotion).
  run_closed_loop(connect_single, 1, 3 * static_cast<int>(kTopologies),
                  frames);
  run_closed_loop(connect_sharded, 1, 3 * static_cast<int>(kTopologies),
                  frames);

  LoopCost single_cost;
  LoopCost sharded_cost;
  for (auto _ : state) {
    const LoopCost a = run_closed_loop(connect_single, kClients,
                                       kRequestsPerClient, frames);
    const LoopCost b = run_closed_loop(connect_sharded, kClients,
                                       kRequestsPerClient, frames);
    single_cost.wall_s += a.wall_s;
    single_cost.server_cpu_s += a.server_cpu_s;
    single_cost.completed += a.completed;
    sharded_cost.wall_s += b.wall_s;
    sharded_cost.server_cpu_s += b.server_cpu_s;
    sharded_cost.completed += b.completed;
  }

  const auto rate = [](std::uint64_t n, double seconds) {
    return seconds > 0.0 ? static_cast<double>(n) / seconds : 0.0;
  };
  state.SetItemsProcessed(
      static_cast<std::int64_t>(sharded_cost.completed));
  const double single_capacity =
      rate(single_cost.completed, single_cost.server_cpu_s);
  const double sharded_capacity =
      rate(sharded_cost.completed, sharded_cost.server_cpu_s);
  state.counters["single_rps"] =
      rate(single_cost.completed, single_cost.wall_s);
  state.counters["sharded_rps"] =
      rate(sharded_cost.completed, sharded_cost.wall_s);
  state.counters["single_capacity_rps"] = single_capacity;
  state.counters["sharded_capacity_rps"] = sharded_capacity;
  state.counters["floor_speedup_vs_single"] =
      single_capacity > 0.0 ? sharded_capacity / single_capacity : 0.0;
  const dls::serve::RouterStats stats = router.stats();
  state.counters["replay_share"] =
      stats.received > 0
          ? static_cast<double>(stats.replayed) /
                static_cast<double>(stats.received)
          : 0.0;

  router.stop();
  for (auto& shard : shards) shard->stop();
  single.stop();
}
BENCHMARK(bm_serve_sharded)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

// Same custom main as bench_serve_throughput: honours --trace-out=FILE
// (or DLS_TRACE_OUT) and writes Chrome trace JSON on exit.
int main(int argc, char** argv) {
  std::string trace_out;
  if (const char* env = std::getenv("DLS_TRACE_OUT")) trace_out = env;
  std::vector<char*> args(argv, argv + argc);
  for (auto it = args.begin(); it != args.end();) {
    const std::string arg = *it;
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(sizeof("--trace-out=") - 1);
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  if (!trace_out.empty()) dls::obs::set_active(true);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!trace_out.empty()) {
    dls::obs::set_active(false);
    if (!dls::obs::export_chrome_trace_file(trace_out)) {
      std::cerr << "error: cannot write trace to " << trace_out << '\n';
      return 1;
    }
  }
  return 0;
}
