// Experiment XNET — cross-network baselines (the authors' companion
// mechanisms [9, 14]): linear chain vs bus vs star on the same processor
// pool, comparing both the schedules and the mechanisms' budgets.
//
// Reproduction targets: star <= bus <= boundary chain in makespan on
// identical hardware (dedicated links beat a shared channel, which beats
// relaying); mechanism budget overhead (payments / raw compute cost) is
// of the same order across topologies — truthfulness costs a bounded
// premium everywhere.
#include <iostream>

#include "agents/agent.hpp"
#include "analysis/sweep.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/dls_lbl.hpp"
#include "core/dls_star.hpp"
#include "dlt/linear.hpp"
#include "dlt/star.hpp"
#include "net/networks.hpp"
#include "protocol/runner.hpp"
#include "protocol/star_runner.hpp"

int main() {
  std::cout << "=== XNET: linear vs bus vs star ===\n\n";
  const dls::core::MechanismConfig config;

  // ---- Makespans across m, homogeneous hardware.
  {
    std::cout << "--- makespan, homogeneous workers (w = 1, channel = 0.2, "
                 "root computes, w_root = 1) ---\n";
    dls::common::Table table({{"workers m"},
                              {"chain (boundary)"},
                              {"bus"},
                              {"star"},
                              {"chain/star"}});
    for (const std::size_t m : dls::analysis::int_ladder(1, 32)) {
      std::vector<double> chain_w(m + 1, 1.0);
      const dls::net::LinearNetwork chain(chain_w,
                                          std::vector<double>(m, 0.2));
      const dls::net::BusNetwork bus(1.0, std::vector<double>(m, 1.0), 0.2);
      const dls::net::StarNetwork star(1.0, std::vector<double>(m, 1.0),
                                       std::vector<double>(m, 0.2));
      const double tc = dls::dlt::solve_linear_boundary(chain).makespan;
      const double tb = dls::dlt::solve_bus(bus).makespan;
      const double ts = dls::dlt::solve_star(star).makespan;
      table.add_row({m, dls::common::Cell(tc, 4), dls::common::Cell(tb, 4),
                     dls::common::Cell(ts, 4),
                     dls::common::Cell(tc / ts, 3)});
    }
    table.print(std::cout);
    std::cout << "\n(homogeneous bus and star coincide: identical links "
                 "make the dedicated/shared distinction moot for a "
                 "one-port root)\n\n";
  }

  // ---- Heterogeneous links separate bus from star.
  {
    std::cout << "--- heterogeneous hardware (random w; star gets the "
                 "same links the chain would use) ---\n";
    dls::common::Rng rng(20260705);
    dls::common::Table table({{"instance"},
                              {"chain"},
                              {"bus (z = mean link)"},
                              {"star"},
                              {"star wins?", dls::common::Align::kLeft}});
    for (int inst = 1; inst <= 8; ++inst) {
      const std::size_t m = 10;
      std::vector<double> w(m), z(m);
      for (auto& x : w) x = rng.log_uniform(0.5, 5.0);
      double zsum = 0.0;
      for (auto& x : z) {
        x = rng.log_uniform(0.05, 0.5);
        zsum += x;
      }
      std::vector<double> chain_w = {1.0};
      chain_w.insert(chain_w.end(), w.begin(), w.end());
      const dls::net::LinearNetwork chain(chain_w, z);
      const dls::net::BusNetwork bus(1.0, w, zsum / static_cast<double>(m));
      const dls::net::StarNetwork star(1.0, w, z);
      const double tc = dls::dlt::solve_linear_boundary(chain).makespan;
      const double tb = dls::dlt::solve_bus(bus).makespan;
      const double ts = dls::dlt::solve_star(star).makespan;
      table.add_row({inst, dls::common::Cell(tc, 4),
                     dls::common::Cell(tb, 4), dls::common::Cell(ts, 4),
                     ts <= tc && ts <= tb ? "yes" : "no"});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  // ---- Mechanism budgets: the price of truthfulness per topology.
  {
    std::cout << "--- mechanism budget overhead (payments / raw compute "
                 "cost), truthful agents ---\n";
    dls::common::Table table({{"workers m"},
                              {"DLS-LBL (chain)"},
                              {"DLS-star"},
                              {"chain makespan"},
                              {"star makespan"}});
    for (const std::size_t m : dls::analysis::int_ladder(2, 32)) {
      std::vector<double> chain_w(m + 1, 1.0);
      const dls::net::LinearNetwork chain(chain_w,
                                          std::vector<double>(m, 0.2));
      std::vector<double> chain_actual(m + 1, 1.0);
      const auto lbl =
          dls::core::assess_compliant(chain, chain_actual, config);
      // Raw compute cost of the unit load at w = 1 is exactly 1.
      const double lbl_overhead = lbl.total_payment / 1.0;

      const dls::net::StarNetwork star(1.0, std::vector<double>(m, 1.0),
                                       std::vector<double>(m, 0.2));
      std::vector<double> star_actual(m, 1.0);
      const auto st = dls::core::assess_dls_star(star, star_actual, config);
      const double star_overhead = st.total_payment / 1.0;

      table.add_row({m, dls::common::Cell(lbl_overhead, 4),
                     dls::common::Cell(star_overhead, 4),
                     dls::common::Cell(lbl.solution.makespan, 4),
                     dls::common::Cell(st.solution.makespan, 4)});
    }
    table.print(std::cout);
    std::cout << "\nBoth mechanisms pay compensation + a truthfulness "
                 "bonus; the budget stays a small\nmultiple of the raw "
                 "compute cost as the pool grows.\n\n";
  }

  // ---- End-to-end protocol runs on both topologies: same workers, a
  // deviant of each applicable class, both protocols catch them.
  {
    std::cout << "--- full protocol runs: chain vs star, m = 5 workers "
                 "---\n";
    const std::size_t m = 5;
    const std::vector<double> worker_rates = {1.2, 0.8, 1.5, 1.0, 0.9};
    const dls::net::LinearNetwork chain(
        {1.0, 1.2, 0.8, 1.5, 1.0, 0.9},
        std::vector<double>(m, 0.2));
    const dls::net::StarNetwork star(1.0, worker_rates,
                                     std::vector<double>(m, 0.2));
    auto population = [&](std::size_t deviant,
                          const dls::agents::Behavior& b) {
      std::vector<dls::agents::StrategicAgent> agents;
      for (std::size_t i = 1; i <= m; ++i) {
        agents.push_back(dls::agents::StrategicAgent{
            i, worker_rates[i - 1],
            i == deviant ? b : dls::agents::Behavior::truthful()});
      }
      return dls::agents::Population(std::move(agents));
    };
    dls::protocol::ProtocolOptions options;
    options.mechanism.audit_probability = 1.0;

    dls::common::Table table(
        {{"scenario", dls::common::Align::kLeft},
         {"chain: caught?", dls::common::Align::kLeft},
         {"chain U(deviant)"},
         {"star: caught?", dls::common::Align::kLeft},
         {"star U(deviant)"}});
    const std::vector<dls::agents::Behavior> rogues = {
        dls::agents::Behavior::truthful(),
        dls::agents::Behavior::contradictor(),
        dls::agents::Behavior::overcharger(0.3),
        dls::agents::Behavior::slow_execution(1.5)};
    for (const auto& b : rogues) {
      const auto chain_report =
          dls::protocol::run_protocol(chain, population(2, b), options);
      const auto star_report =
          dls::protocol::run_star_protocol(star, population(2, b), options);
      auto caught = [&](const auto& incidents) {
        for (const auto& inc : incidents) {
          if ((inc.substantiated ? inc.accused : inc.reporter) == 2 &&
              inc.fine > 0.0) {
            return "yes";
          }
        }
        return "—";
      };
      table.add_row({b.name, caught(chain_report.incidents),
                     dls::common::Cell(chain_report.processors[2].utility, 3),
                     caught(star_report.incidents),
                     dls::common::Cell(star_report.workers[2].utility, 3)});
    }
    table.print(std::cout);
    std::cout << "\nThe verification machinery generalises: both "
                 "topologies' protocols catch the\nsame deviation classes "
                 "and keep truthful utilities non-negative.\n";
  }
  return 0;
}
