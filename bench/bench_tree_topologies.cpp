// Experiment TREE — the companion tree-network setting [9], built on the
// recursive star reduction: makespan across tree shapes on identical
// hardware, equal-finish validation, and the DLS-T mechanism's truthful
// economics.
//
// Reproduction targets: star <= balanced trees <= chain on uniform
// hardware (the relay-depth spectrum); all-node simultaneous completion
// at the optimum; non-negative truthful utilities and a zero
// truth-advantage gap for the tree mechanism.
#include <iostream>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/dls_tree.hpp"
#include "dlt/tree.hpp"
#include "net/tree.hpp"

int main() {
  std::cout << "=== TREE: topology spectrum and the DLS-T mechanism ===\n\n";

  // ---- Shape spectrum at fixed node count.
  {
    std::cout << "--- 15 identical processors (w = 1, z = 0.2), varying "
                 "shape ---\n";
    using dls::net::TreeNetwork;
    struct Case {
      const char* name;
      TreeNetwork tree;
    };
    const double w = 1.0, z = 0.2;
    const Case cases[] = {
        {"chain (height 14)",
         TreeNetwork::chain(std::vector<double>(15, w),
                            std::vector<double>(14, z))},
        {"binary tree (height 3)", TreeNetwork::balanced(2, 3, w, z)},
        {"14-ary star (height 1)",
         TreeNetwork::star(w, std::vector<double>(14, w),
                           std::vector<double>(14, z))},
    };
    dls::common::Table table({{"shape", dls::common::Align::kLeft},
                              {"height"},
                              {"makespan"},
                              {"speedup vs 1 proc"},
                              {"finish spread"}});
    for (const Case& c : cases) {
      const auto sol = dls::dlt::solve_tree(c.tree);
      const auto finish = dls::dlt::tree_finish_times(c.tree, sol);
      double lo = 1e300, hi = 0.0;
      for (const double f : finish) {
        lo = std::min(lo, f);
        hi = std::max(hi, f);
      }
      table.add_row({c.name, c.tree.height(),
                     dls::common::Cell(sol.makespan, 4),
                     dls::common::Cell(w / sol.makespan, 2),
                     dls::common::Cell(hi - lo, 12)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  // ---- Fanout sweep: how much does width buy at fixed node count?
  {
    std::cout << "--- 40 identical processors arranged as r-ary trees ---\n";
    dls::common::Table table(
        {{"arity"}, {"height"}, {"makespan"}, {"speedup"}});
    for (const std::size_t arity : {1u, 2u, 3u, 6u, 13u, 39u}) {
      // Build an arity-ary tree with exactly 40 nodes (BFS fill).
      std::vector<double> w(40, 1.0), z(40, 1.0);
      std::vector<std::size_t> parent(40, 0);
      for (std::size_t i = 1; i < 40; ++i) {
        parent[i] = (i - 1) / arity;
        z[i] = 0.2;
      }
      const dls::net::TreeNetwork tree(w, z, parent);
      const auto sol = dls::dlt::solve_tree(tree);
      table.add_row({static_cast<std::int64_t>(arity), tree.height(),
                     dls::common::Cell(sol.makespan, 4),
                     dls::common::Cell(1.0 / sol.makespan, 2)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  // ---- DLS-T economics on random trees.
  {
    dls::common::Rng rng(606);
    const dls::core::MechanismConfig config;
    dls::common::OnlineStats truthful_min;
    double worst_gap = -1e300;
    int participation_violations = 0;
    constexpr int kInstances = 80;
    for (int rep = 0; rep < kInstances; ++rep) {
      const auto n = static_cast<std::size_t>(rng.uniform_int(3, 14));
      const auto tree =
          dls::net::TreeNetwork::random(n, rng, 0.5, 5.0, 0.05, 0.5);
      std::vector<double> rates(n);
      for (std::size_t i = 0; i < n; ++i) rates[i] = tree.w(i);
      const auto result = dls::core::assess_dls_tree(tree, rates, config);
      for (std::size_t v = 1; v < n; ++v) {
        truthful_min.add(result.nodes[v].utility);
        if (result.nodes[v].utility < -1e-9) ++participation_violations;
        const double t = tree.w(v);
        const double truth_u =
            dls::core::tree_utility_under_bid(tree, v, t, t, config);
        for (const double f : {0.4, 0.8, 1.25, 2.0}) {
          const double u =
              dls::core::tree_utility_under_bid(tree, v, t * f, t, config);
          worst_gap = std::max(worst_gap, u - truth_u);
        }
      }
    }
    std::cout << "DLS-T on " << kInstances << " random trees:\n"
              << "  min truthful utility: " << truthful_min.min() << " ("
              << (participation_violations == 0 ? "PASS" : "FAIL")
              << " voluntary participation)\n"
              << "  max bid-deviation advantage: " << worst_gap << " ("
              << (worst_gap <= 1e-9 ? "PASS" : "FAIL")
              << " strategyproofness)\n";
  }
  return 0;
}
