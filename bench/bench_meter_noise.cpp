// Experiment METER — robustness to measurement error. The paper's
// tamper-proof meter reports w̃ exactly; a deployed meter jitters. This
// bench perturbs honest processors' metered rates by multiplicative
// noise ε and measures the damage:
//   * truthful utilities move by O(ε) (the bonus is piecewise-linear in
//     ŵ) — no cliff;
//   * voluntary participation starts failing only once the noise
//     overwhelms the bonus margin w_{j-1} − w̄_{j-1};
//   * the dominant-strategy property degrades gracefully: the best
//     response stays within the noise band around the truth.
#include <iostream>

#include "analysis/experiments.hpp"
#include "analysis/sweep.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/dls_lbl.hpp"
#include "net/networks.hpp"

namespace {

/// Utility vector of a truthful compliant run with metered rates
/// perturbed multiplicatively by factors in [1, 1+eps] (meters can only
/// over-read: under-reading would imply running faster than capacity).
std::vector<double> noisy_utilities(const dls::net::LinearNetwork& net,
                                    double eps, dls::common::Rng& rng,
                                    const dls::core::MechanismConfig& cfg) {
  std::vector<double> metered(net.size());
  for (std::size_t i = 0; i < net.size(); ++i) {
    metered[i] = net.w(i) * (1.0 + eps * rng.uniform01());
  }
  metered[0] = net.w(0);
  const auto result = dls::core::assess_compliant(net, metered, cfg);
  std::vector<double> out;
  for (std::size_t j = 1; j < net.size(); ++j) {
    out.push_back(result.processors[j].money.utility);
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "=== METER: robustness to measurement noise ===\n\n";
  const dls::core::MechanismConfig config;

  // ---- Utility distortion and participation failures vs noise level.
  {
    dls::common::Table table({{"noise eps"},
                              {"mean |dU| / U"},
                              {"max |dU| / U"},
                              {"negative-utility cases"},
                              {"out of"}});
    dls::common::Rng rng(31415);
    constexpr int kInstances = 150;
    for (const double eps : {0.001, 0.01, 0.05, 0.1, 0.25, 0.5}) {
      dls::common::OnlineStats rel;
      int negative = 0;
      int total = 0;
      dls::common::Rng sweep_rng = rng;  // same instances at every eps
      for (int rep = 0; rep < kInstances; ++rep) {
        const auto m = static_cast<std::size_t>(sweep_rng.uniform_int(1, 12));
        const auto net = dls::net::LinearNetwork::random(
            m + 1, sweep_rng, dls::analysis::kWLo, dls::analysis::kWHi,
            dls::analysis::kZLo, dls::analysis::kZHi);
        std::vector<double> exact(net.processing_times().begin(),
                                  net.processing_times().end());
        const auto clean = dls::core::assess_compliant(net, exact, config);
        const auto noisy = noisy_utilities(net, eps, sweep_rng, config);
        for (std::size_t j = 1; j < net.size(); ++j) {
          const double u0 = clean.processors[j].money.utility;
          const double u1 = noisy[j - 1];
          rel.add(std::abs(u1 - u0) / std::max(u0, 1e-12));
          if (u1 < 0.0) ++negative;
          ++total;
        }
      }
      table.add_row({dls::common::Cell(eps, 3),
                     dls::common::Cell(rel.mean(), 4),
                     dls::common::Cell(rel.max(), 4), negative, total});
    }
    table.print(std::cout);
    std::cout << "\nDistortion scales ~linearly with the noise; "
                 "participation violations only\nappear once the noise "
                 "rivals the bonus margin itself.\n\n";
  }

  // ---- Does noise break the truthful peak?
  {
    std::cout << "--- best-response bid under metering noise ---\n";
    dls::common::Table table({{"noise eps"},
                              {"mean best multiplier"},
                              {"worst deviation from 1.0"}});
    dls::common::Rng rng(2718);
    constexpr int kInstances = 60;
    for (const double eps : {0.0, 0.01, 0.05, 0.15}) {
      dls::common::OnlineStats mult;
      double worst = 0.0;
      for (int rep = 0; rep < kInstances; ++rep) {
        const auto m = static_cast<std::size_t>(rng.uniform_int(2, 8));
        const auto net = dls::net::LinearNetwork::random(
            m + 1, rng, dls::analysis::kWLo, dls::analysis::kWHi,
            dls::analysis::kZLo, dls::analysis::kZHi);
        const auto i = static_cast<std::size_t>(
            rng.uniform_int(1, static_cast<std::int64_t>(m)));
        const double t = net.w(i);
        const double noise = 1.0 + eps * rng.uniform01();
        double best_u = -1e300, best_f = 1.0;
        for (double f = 0.5; f <= 2.01; f += 0.05) {
          // The agent bids t*f and runs at capacity; the meter
          // over-reads by `noise`.
          const double u = dls::core::utility_under_bid(
              net, i, t * f, t * noise, config);
          if (u > best_u + 1e-12) {
            best_u = u;
            best_f = f;
          }
        }
        mult.add(best_f);
        worst = std::max(worst, std::abs(best_f - 1.0));
      }
      table.add_row({dls::common::Cell(eps, 2),
                     dls::common::Cell(mult.mean(), 3),
                     dls::common::Cell(worst, 3)});
    }
    table.print(std::cout);
    std::cout << "\nThe optimal bid drifts with the meter bias (the agent "
                 "hedges the over-read),\nbut stays inside the noise band "
                 "— no cliff, no runaway manipulation.\n";
  }
  return 0;
}
