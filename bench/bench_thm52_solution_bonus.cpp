// Experiment THM5.2 — Theorem 5.2: selfish-and-annoying agents and the
// solution bonus S.
//
// A data corruptor gains nothing and loses nothing under the base
// mechanism (its utility is unchanged — that is exactly why fines cannot
// deter it). With the solution bonus enabled, corrupting the data
// forfeits S for the corruptor (and everyone else), so a
// welfare-maximising agent won't do it.
//
// Reproduction targets: ΔU(corruptor) = 0 without S; ΔU = −S with S,
// for every position and instance.
#include <iostream>

#include "agents/agent.hpp"
#include "analysis/experiments.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "net/networks.hpp"
#include "protocol/runner.hpp"

namespace {

using dls::agents::Behavior;
using dls::agents::Population;
using dls::agents::StrategicAgent;

Population population_for(const dls::net::LinearNetwork& net,
                          std::size_t deviant, const Behavior& b) {
  std::vector<StrategicAgent> agents;
  for (std::size_t i = 1; i < net.size(); ++i) {
    agents.push_back(StrategicAgent{
        i, net.w(i), i == deviant ? b : Behavior::truthful()});
  }
  return Population(std::move(agents));
}

}  // namespace

int main() {
  std::cout << "=== THM5.2: the solution bonus S vs data corruption ===\n\n";

  const dls::net::LinearNetwork net({1.0, 1.2, 0.8, 1.5},
                                    {0.2, 0.15, 0.25});
  const double s_values[] = {0.0, 0.01, 0.05, 0.2};

  dls::common::Table table({{"S"},
                            {"corruptor", dls::common::Align::kLeft},
                            {"U honest"},
                            {"U corrupting"},
                            {"delta"},
                            {"deterred?", dls::common::Align::kLeft}});
  for (const double s : s_values) {
    dls::protocol::ProtocolOptions options;
    options.mechanism.solution_bonus_enabled = s > 0.0;
    options.mechanism.solution_bonus = s;
    const auto honest = dls::protocol::run_protocol(
        net, population_for(net, 0, Behavior::truthful()), options);
    for (std::size_t deviant = 1; deviant < net.size(); ++deviant) {
      const auto corrupt = dls::protocol::run_protocol(
          net, population_for(net, deviant, Behavior::data_corruptor()),
          options);
      const double hu = honest.processors[deviant].utility;
      const double cu = corrupt.processors[deviant].utility;
      table.add_row({dls::common::Cell(s, 2), "P" + std::to_string(deviant),
                     dls::common::Cell(hu, 4), dls::common::Cell(cu, 4),
                     dls::common::Cell(cu - hu, 4),
                     cu < hu - 1e-12 ? "yes" : "no (indifferent)"});
    }
  }
  table.print(std::cout);

  // Randomized check that the delta is exactly −S everywhere.
  dls::common::Rng rng(808);
  int mismatches = 0;
  constexpr int kInstances = 100;
  for (int rep = 0; rep < kInstances; ++rep) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(2, 8));
    const auto network = dls::net::LinearNetwork::random(
        m + 1, rng, dls::analysis::kWLo, dls::analysis::kWHi,
        dls::analysis::kZLo, dls::analysis::kZHi);
    dls::protocol::ProtocolOptions options;
    options.mechanism.solution_bonus_enabled = true;
    options.mechanism.solution_bonus = 0.05;
    const auto deviant = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(m)));
    const auto honest = dls::protocol::run_protocol(
        network, population_for(network, 0, Behavior::truthful()), options);
    const auto corrupt = dls::protocol::run_protocol(
        network, population_for(network, deviant, Behavior::data_corruptor()),
        options);
    const double delta = corrupt.processors[deviant].utility -
                         honest.processors[deviant].utility;
    if (std::abs(delta + 0.05) > 1e-9) ++mismatches;
  }
  std::cout << "\nrandomized: " << kInstances
            << " instances, delta != -S in " << mismatches << " cases ("
            << (mismatches == 0 ? "PASS" : "FAIL") << ")\n";
  std::cout << "Without S the corruptor is indifferent; any S > 0 makes "
               "corruption strictly dominated (Theorem 5.2).\n";
  return 0;
}
