// Experiment THM2.1 — Theorem 2.1 (participation/optimality): the
// Algorithm 1 allocation against naive baselines across chain length and
// communication regimes.
//
// Reproduction targets (shape, not absolute numbers):
//  * the optimal allocation dominates every baseline everywhere;
//  * with fast links (small z/w) longer chains keep helping; with slow
//    links the marginal processor is worth little — the speedup curve
//    saturates, and the equal-split baseline eventually LOSES to running
//    fewer processors (communication swamps computation);
//  * the optimum never degrades as the chain grows (it can idle nobody
//    or, at worst, assign vanishing shares).
#include <iostream>

#include "analysis/experiments.hpp"
#include "analysis/sweep.hpp"
#include "common/ascii_plot.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "dlt/baselines.hpp"
#include "dlt/linear.hpp"
#include "net/networks.hpp"

int main() {
  std::cout << "=== THM2.1: optimal allocation vs baselines ===\n\n";

  // ---- Table: homogeneous chains (w = 1), three communication regimes.
  for (const double z : {0.02, 0.2, 1.0}) {
    std::cout << "--- homogeneous chain, w = 1, z = " << z
              << " (z/w = " << z << ") ---\n";
    dls::common::Table table({{"m+1"},
                              {"T optimal"},
                              {"T equal"},
                              {"T proportional"},
                              {"T root-only"},
                              {"speedup opt"},
                              {"equal/opt"}});
    for (const std::size_t n : dls::analysis::int_ladder(2, 64)) {
      const auto network = dls::net::LinearNetwork::uniform(n, 1.0, z);
      const auto cmp = dls::analysis::compare_baselines(network);
      table.add_row({n, dls::common::Cell(cmp.optimal, 4),
                     dls::common::Cell(cmp.equal_split, 4),
                     dls::common::Cell(cmp.speed_proportional, 4),
                     dls::common::Cell(cmp.root_only, 4),
                     dls::common::Cell(cmp.root_only / cmp.optimal, 2),
                     dls::common::Cell(cmp.equal_split / cmp.optimal, 2)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  // ---- Plot: speedup saturation, optimal vs equal split (z = 0.2).
  {
    dls::common::Series opt{"optimal", {}, {}, 'o'};
    dls::common::Series equal{"equal-split", {}, {}, 'e'};
    for (std::size_t n = 2; n <= 48; ++n) {
      const auto network = dls::net::LinearNetwork::uniform(n, 1.0, 0.2);
      const auto cmp = dls::analysis::compare_baselines(network);
      opt.xs.push_back(static_cast<double>(n));
      opt.ys.push_back(1.0 / cmp.optimal);
      equal.xs.push_back(static_cast<double>(n));
      equal.ys.push_back(1.0 / cmp.equal_split);
    }
    const std::vector<dls::common::Series> series = {opt, equal};
    dls::common::plot(
        std::cout, series,
        {.width = 72,
         .height = 16,
         .x_label = "processors (m+1)",
         .y_label = "speedup over a single processor",
         .title = "speedup vs chain length (w = 1, z = 0.2)"});
    std::cout << '\n';
  }

  // ---- Crossover: where does the equal split start losing to simply
  // truncating the chain (prefix-optimal with fewer processors)?
  {
    std::cout << "--- equal-split vs 2-processor prefix optimum, w = 1 ---\n";
    dls::common::Table table(
        {{"z"}, {"T equal (16 procs)"}, {"T prefix-2 optimal"},
         {"equal split still wins?", dls::common::Align::kLeft}});
    for (const double z : dls::analysis::logspace(0.01, 2.0, 10)) {
      const auto network = dls::net::LinearNetwork::uniform(16, 1.0, z);
      const double equal = dls::dlt::makespan(
          network, dls::dlt::baseline_equal(network.size()));
      const double prefix2 = dls::dlt::makespan(
          network, dls::dlt::baseline_prefix_optimal(network, 2));
      table.add_row({dls::common::Cell(z, 3), dls::common::Cell(equal, 4),
                     dls::common::Cell(prefix2, 4),
                     equal < prefix2 ? "yes" : "no  <-- crossover"});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  // ---- Randomized dominance check (the property the theorem promises).
  {
    dls::common::Rng rng(424242);
    dls::common::OnlineStats gap_equal, gap_prop;
    int violations = 0;
    constexpr int kInstances = 400;
    for (int i = 0; i < kInstances; ++i) {
      const auto m = static_cast<std::size_t>(rng.uniform_int(2, 40));
      const auto network = dls::net::LinearNetwork::random(
          m, rng, dls::analysis::kWLo, dls::analysis::kWHi,
          dls::analysis::kZLo, dls::analysis::kZHi);
      const auto cmp = dls::analysis::compare_baselines(network);
      if (cmp.optimal > cmp.equal_split + 1e-9 ||
          cmp.optimal > cmp.speed_proportional + 1e-9 ||
          cmp.optimal > cmp.root_only + 1e-9) {
        ++violations;
      }
      gap_equal.add(cmp.equal_split / cmp.optimal);
      gap_prop.add(cmp.speed_proportional / cmp.optimal);
    }
    std::cout << "randomized dominance: " << kInstances
              << " instances, violations = " << violations << " ("
              << (violations == 0 ? "PASS" : "FAIL") << ")\n";
    std::cout << "equal-split / optimal     : mean "
              << gap_equal.mean() << ", max " << gap_equal.max() << '\n';
    std::cout << "proportional / optimal    : mean "
              << gap_prop.mean() << ", max " << gap_prop.max() << '\n';
  }
  return 0;
}
