#!/usr/bin/env python3
"""Gate on perf regressions between two google-benchmark JSON reports.

Compares per-benchmark cpu_time of a current run against a committed
baseline (bench/BENCH_perf.json) and fails when any shared benchmark got
slower than --threshold times the baseline. Benchmarks present in only
one report are listed but never fail the gate, so adding or retiring
benchmarks does not require touching this script.

User counters whose name starts with ``hist_`` (the serve bench exports
its obs-histogram latency quantiles as hist_p50_us / hist_p99_us) are
gated too, as pseudo-benchmarks named ``<benchmark>#<counter>`` — so a
latency-distribution regression fails the gate even when the benchmark's
own cpu_time stays flat (closed-loop wall time hides tail latency).

User counters whose name starts with ``floor_`` are gated as MINIMA:
bigger is better, and the gate fails when the current value drops below
baseline / threshold. The batch solver exports its measured speedup over
sequential scalar solves as ``floor_speedup_vs_scalar``, so losing the
vectorised win is a gate failure, not a silent note in a report.

Usage:
    bench/check_perf_regression.py BASELINE CURRENT [--threshold 3.0]
"""
from __future__ import annotations

import argparse
import json
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_report(path: str) -> tuple[dict[str, float], dict[str, float]]:
    """Returns (cpu times in ns incl. hist_ counters, floor_ counters)."""
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    times: dict[str, float] = {}
    floors: dict[str, float] = {}
    for bench in report.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) so repetition runs
        # compare raw iterations against raw iterations.
        if bench.get("run_type", "iteration") != "iteration":
            continue
        unit = _UNIT_NS.get(bench.get("time_unit", "ns"))
        if unit is None:
            raise SystemExit(f"{path}: unknown time_unit in {bench['name']}")
        times[bench["name"]] = float(bench["cpu_time"]) * unit
        for counter, value in bench.items():
            if not isinstance(counter, str):
                continue
            # hist_* user counters are latency quantiles in microseconds;
            # gate them alongside cpu_time as pseudo-benchmarks.
            if counter.startswith("hist_"):
                times[f"{bench['name']}#{counter}"] = float(value) * 1e3
            # floor_* counters are bigger-is-better figures gated as
            # minima by main().
            elif counter.startswith("floor_"):
                floors[f"{bench['name']}#{counter}"] = float(value)
    return times, floors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="JSON from the run under test")
    parser.add_argument(
        "--threshold",
        type=float,
        default=3.0,
        help="fail when cpu_time exceeds threshold x baseline (default 3.0)",
    )
    args = parser.parse_args()

    baseline, baseline_floors = load_report(args.baseline)
    current, current_floors = load_report(args.current)
    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("error: no overlapping benchmarks between the two reports",
              file=sys.stderr)
        return 2

    failures = []
    for name in shared:
        ratio = (current[name] / baseline[name]
                 if baseline[name] > 0.0 else float("inf"))
        verdict = "FAIL" if ratio > args.threshold else "ok"
        print(f"{verdict:>4}  {name}: {baseline[name]:,.0f} ns -> "
              f"{current[name]:,.0f} ns  ({ratio:.2f}x)")
        if ratio > args.threshold:
            failures.append(name)

    # floor_ counters: bigger is better; fail when the current value
    # drops below baseline / threshold.
    for name in sorted(set(baseline_floors) & set(current_floors)):
        floor = baseline_floors[name] / args.threshold
        verdict = "FAIL" if current_floors[name] < floor else "ok"
        print(f"{verdict:>4}  {name}: {baseline_floors[name]:,.2f} -> "
              f"{current_floors[name]:,.2f}  (floor {floor:,.2f})")
        if current_floors[name] < floor:
            failures.append(name)

    for name in sorted(set(current) - set(baseline)):
        print(f" new  {name}: {current[name]:,.0f} ns (no baseline)")
    for name in sorted(set(current_floors) - set(baseline_floors)):
        print(f" new  {name}: {current_floors[name]:,.2f} (no baseline)")
    for name in sorted(set(baseline) - set(current)):
        print(f"gone  {name}: baseline only, not in current run")

    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed beyond "
              f"{args.threshold:.1f}x: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print(f"\nall {len(shared)} shared benchmarks within "
          f"{args.threshold:.1f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
