// Experiment SERVE — closed-loop load generator for the scheduling
// service (google-benchmark): C client threads hammer one
// SchedulerService over the framed in-memory transport, each issuing
// the next request the moment the previous response lands. Reports
// requests/sec (items_processed rate) and request latency two ways:
//  * p50_us / p99_us   — exact percentiles over every measured round
//    trip (common::percentile on the raw samples);
//  * hist_p50_us / hist_p99_us — the same quantiles read back from the
//    obs registry's serve.request.latency_us histogram, the figures a
//    production dashboard would see. check_perf_regression.py gates on
//    hist_* counters, so the perf gate and the dashboards agree.
// bm_serve_cache_speedup runs the same load warm (LRU sized to fit the
// topology set) and cold (cache disabled) and reports the ratio.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "obs/obs.hpp"
#include "obs/trace_export.hpp"
#include "serve/chaos.hpp"
#include "serve/client.hpp"
#include "serve/retry.hpp"
#include "serve/service.hpp"

namespace {

struct Topology {
  std::vector<double> w;
  std::vector<double> z;
};

std::vector<Topology> make_topologies(std::size_t count, std::size_t chain) {
  dls::common::Rng rng(7);
  std::vector<Topology> out(count);
  for (Topology& topo : out) {
    topo.w.resize(chain);
    topo.z.resize(chain - 1);
    for (double& x : topo.w) x = rng.uniform(0.5, 5.0);
    for (double& x : topo.z) x = rng.uniform(0.05, 0.5);
  }
  return out;
}

/// One closed-loop burst: `clients` threads, `requests` round trips
/// each, next request issued as soon as the response arrives. Appends
/// the per-request latencies (µs) of kOk responses to `latencies_us`.
void run_closed_loop(dls::serve::SchedulerService& service,
                     std::size_t clients, int requests,
                     const std::vector<Topology>& topos,
                     std::vector<double>& latencies_us) {
  std::vector<std::vector<double>> per_client(clients);
  std::vector<std::thread> crew;
  crew.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    crew.emplace_back([&, c] {
      dls::serve::SchedulerClient client(service.connect());
      per_client[c].reserve(static_cast<std::size_t>(requests));
      using clock = std::chrono::steady_clock;
      for (int i = 0; i < requests; ++i) {
        const Topology& topo =
            topos[(c + static_cast<std::size_t>(i)) % topos.size()];
        const auto t0 = clock::now();
        const dls::serve::ScheduleResponse response =
            client.schedule(topo.w, topo.z);
        const auto t1 = clock::now();
        if (response.status == dls::serve::ScheduleStatus::kOk) {
          per_client[c].push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
        }
      }
      client.close();
    });
  }
  for (std::thread& t : crew) t.join();
  for (const std::vector<double>& chunk : per_client) {
    latencies_us.insert(latencies_us.end(), chunk.begin(), chunk.end());
  }
}

constexpr int kRequestsPerClient = 64;
constexpr std::size_t kTopologies = 8;
constexpr std::size_t kChain = 64;

// Closed-loop throughput at C concurrent clients, cache enabled and
// large enough to keep the whole working set resident after warmup.
void bm_serve_closed_loop(benchmark::State& state) {
  const auto clients = static_cast<std::size_t>(state.range(0));
  const std::vector<Topology> topos = make_topologies(kTopologies, kChain);

  dls::serve::ServiceConfig config;
  config.queue_capacity = std::max<std::size_t>(2 * clients, 8);
  config.cache_capacity = kTopologies;
  dls::serve::SchedulerService service(config);

  // Route the serve.request.latency_us histogram through the live obs
  // registry, exactly as a deployment would; reset so earlier runs in
  // this process don't bleed into the quantiles.
  dls::obs::MetricsRegistry::global().reset();
  dls::obs::set_active(true);

  std::vector<double> latencies_us;
  for (auto _ : state) {
    run_closed_loop(service, clients, kRequestsPerClient, topos,
                    latencies_us);
  }
  dls::obs::set_active(false);

  const auto total = static_cast<std::int64_t>(clients) *
                     static_cast<std::int64_t>(kRequestsPerClient) *
                     static_cast<std::int64_t>(state.iterations());
  state.SetItemsProcessed(total);  // items/sec == requests/sec
  state.counters["p50_us"] = dls::common::percentile(latencies_us, 50.0);
  state.counters["p99_us"] = dls::common::percentile(latencies_us, 99.0);

  const dls::obs::MetricsSnapshot snap =
      dls::obs::MetricsRegistry::global().snapshot();
  const auto hist = snap.histograms.find("serve.request.latency_us");
  if (hist != snap.histograms.end()) {
    state.counters["hist_p50_us"] =
        dls::obs::histogram_quantile(hist->second, 0.50);
    state.counters["hist_p99_us"] =
        dls::obs::histogram_quantile(hist->second, 0.99);
  }
  const auto hits = snap.counters.find("serve.cache.hits");
  const auto misses = snap.counters.find("serve.cache.misses");
  if (hits != snap.counters.end() && misses != snap.counters.end() &&
      hits->second + misses->second > 0) {
    state.counters["cache_hit_rate"] =
        static_cast<double>(hits->second) /
        static_cast<double>(hits->second + misses->second);
  }
  // Spans collected while active are bench exhaust, not a trace anyone
  // asked for; drop them so repeated runs don't accumulate memory.
  dls::obs::TraceSink::global().clear();
  service.stop();
}
// UseRealTime: clients spend most of their round trip blocked on the
// service, so wall-clock — not this thread's CPU time — is the rate
// that means "requests per second".
BENCHMARK(bm_serve_closed_loop)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Warm vs cold: the identical closed loop against a cache sized for the
// topology set and against a disabled cache. The counter is the ratio
// of cold to warm wall time — the factor the memo buys under realistic
// repeated traffic.
void bm_serve_cache_speedup(benchmark::State& state) {
  constexpr std::size_t kClients = 1;
  // Chains long enough that the solve (~100 µs at 4096, see bm_solver)
  // dominates the transport cost, and enough requests per burst to
  // amortise the load generator's thread spawns — the regime the cache
  // exists for.
  constexpr std::size_t kSpeedupChain = 4096;
  constexpr int kSpeedupRequests = 256;
  const std::vector<Topology> topos =
      make_topologies(kTopologies, kSpeedupChain);

  dls::serve::ServiceConfig warm_config;
  warm_config.queue_capacity = 2 * kClients;
  warm_config.cache_capacity = kTopologies;
  dls::serve::SchedulerService warm(warm_config);

  dls::serve::ServiceConfig cold_config;
  cold_config.queue_capacity = 2 * kClients;
  cold_config.cache_capacity = 0;  // every request re-solves
  dls::serve::SchedulerService cold(cold_config);

  // Pre-warm the LRU so the warm side measures steady-state hits.
  std::vector<double> scratch;
  run_closed_loop(warm, 1, static_cast<int>(kTopologies), topos, scratch);

  using clock = std::chrono::steady_clock;
  double warm_seconds = 0.0;
  double cold_seconds = 0.0;
  for (auto _ : state) {
    scratch.clear();
    const auto t0 = clock::now();
    run_closed_loop(warm, kClients, kSpeedupRequests, topos, scratch);
    const auto t1 = clock::now();
    run_closed_loop(cold, kClients, kSpeedupRequests, topos, scratch);
    const auto t2 = clock::now();
    warm_seconds += std::chrono::duration<double>(t1 - t0).count();
    cold_seconds += std::chrono::duration<double>(t2 - t1).count();
  }
  state.counters["speedup"] =
      warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0;
  warm.stop();
  cold.stop();
}
BENCHMARK(bm_serve_cache_speedup)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Dispatch-window batching under closed-loop load: C clients, cache
// disabled so every request is a solver miss, chains long enough that
// the solve dominates the transport. Arg(0) runs with batching off
// (batch_min_lanes = 0), Arg(1) with the default threshold; comparing
// the rows' items/sec shows what coalescing same-length misses into one
// SoA solve buys when concurrent traffic piles up in a dispatch window.
// batched_share reports how much of the kOk traffic actually rode a
// batch lane (or alias) rather than the classic per-request path.
void bm_serve_batch_dispatch(benchmark::State& state) {
  const bool batching = state.range(0) == 1;
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kDispatchChain = 2048;
  constexpr int kDispatchRequests = 32;
  const std::vector<Topology> topos =
      make_topologies(kClients, kDispatchChain);

  dls::serve::ServiceConfig config;
  config.queue_capacity = 4 * kClients;
  config.cache_capacity = 0;  // every request re-solves
  config.max_batch = kClients;
  config.batch_min_lanes = batching ? 2 : 0;
  dls::serve::SchedulerService service(config);

  std::vector<double> latencies_us;
  for (auto _ : state) {
    run_closed_loop(service, kClients, kDispatchRequests, topos,
                    latencies_us);
  }

  const auto total = static_cast<std::int64_t>(kClients) *
                     static_cast<std::int64_t>(kDispatchRequests) *
                     static_cast<std::int64_t>(state.iterations());
  state.SetItemsProcessed(total);  // items/sec == requests/sec
  state.counters["p50_us"] = dls::common::percentile(latencies_us, 50.0);
  state.counters["p99_us"] = dls::common::percentile(latencies_us, 99.0);
  const dls::serve::ServiceStats stats = service.stats();
  state.counters["batched_share"] =
      stats.ok > 0
          ? static_cast<double>(stats.batched) / static_cast<double>(stats.ok)
          : 0.0;
  state.counters["batch_groups"] = static_cast<double>(stats.batch_groups);
  service.stop();
}
BENCHMARK(bm_serve_batch_dispatch)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Chaos resilience: the robust client under 50% silent-disconnect
// chaos (every request frame has a coin-flip chance of vanishing with
// its connection). Arg(0) retries without a circuit breaker, Arg(1)
// with one. items/sec is landed answers; wire_attempts_per_s is the
// resend traffic actually put on the wire — the figure the breaker
// exists to cap during a failure storm (open windows pause sending
// instead of hammering a broken path).
void bm_serve_chaos(benchmark::State& state) {
  const bool use_breaker = state.range(0) == 1;
  const std::vector<Topology> topos = make_topologies(kTopologies, kChain);

  dls::serve::ServiceConfig config;
  config.queue_capacity = 8;
  config.cache_capacity = kTopologies;
  dls::serve::SchedulerService service(config);

  dls::serve::ChaosConfig chaos;
  chaos.disconnect = 0.5;

  constexpr std::size_t kClients = 2;
  constexpr int kChaosRequests = 32;
  std::uint64_t attempts = 0;
  std::uint64_t rejections = 0;
  std::uint64_t landed = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t round = 0;
  std::mutex tally_mutex;
  for (auto _ : state) {
    ++round;
    std::vector<std::thread> crew;
    crew.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
      crew.emplace_back([&, c] {
        const std::uint64_t seed = round * 1000003ull + c * 7919ull;
        std::uint64_t connection = 0;
        const auto connect = [&]() -> std::unique_ptr<dls::serve::Transport> {
          ++connection;
          return std::make_unique<dls::serve::ChaosTransport>(
              service.connect(), chaos,
              seed ^ (connection * 0x9e3779b97f4a7c15ull));
        };
        dls::serve::CircuitBreaker breaker(dls::serve::BreakerConfig{
            /*failure_threshold=*/3,
            /*open_cooldown_s=*/0.001,
            /*half_open_probes=*/1,
        });
        dls::serve::SchedulerClient client(connect());
        dls::serve::RobustOptions options;
        options.policy.base_delay_s = 0.0001;
        options.policy.max_delay_s = 0.002;
        options.policy.max_attempts = 64;
        options.policy.attempt_deadline_s = 0.1;
        options.breaker = use_breaker ? &breaker : nullptr;
        options.reconnect = connect;
        options.seed = seed + 1;
        std::uint64_t my_attempts = 0, my_rejections = 0;
        std::uint64_t my_landed = 0, my_reconnects = 0;
        for (int i = 0; i < kChaosRequests; ++i) {
          const Topology& topo =
              topos[(c + static_cast<std::size_t>(i)) % topos.size()];
          const dls::serve::RobustResult result = client.schedule_robust(
              topo.w, topo.z, dls::serve::ScheduleOptions{}, options);
          my_attempts += result.stats.attempts;
          my_rejections += result.stats.breaker_rejections;
          my_reconnects += result.stats.reconnects;
          if (result.outcome == dls::serve::RobustOutcome::kAnswered &&
              result.response.status == dls::serve::ScheduleStatus::kOk) {
            ++my_landed;
          }
        }
        client.close();
        std::lock_guard<std::mutex> lock(tally_mutex);
        attempts += my_attempts;
        rejections += my_rejections;
        landed += my_landed;
        reconnects += my_reconnects;
      });
    }
    for (std::thread& t : crew) t.join();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(landed));
  state.counters["wire_attempts_per_s"] = benchmark::Counter(
      static_cast<double>(attempts), benchmark::Counter::kIsRate);
  state.counters["attempts_per_ok"] =
      landed > 0 ? static_cast<double>(attempts) /
                       static_cast<double>(landed)
                 : 0.0;
  state.counters["reconnects_per_ok"] =
      landed > 0 ? static_cast<double>(reconnects) /
                       static_cast<double>(landed)
                 : 0.0;
  state.counters["breaker_rejections"] = static_cast<double>(rejections);
  service.stop();
}
BENCHMARK(bm_serve_chaos)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

// Same custom main as bench_perf_micro: honours --trace-out=FILE (or
// DLS_TRACE_OUT) and writes Chrome trace JSON on exit.
int main(int argc, char** argv) {
  std::string trace_out;
  if (const char* env = std::getenv("DLS_TRACE_OUT")) trace_out = env;
  std::vector<char*> args(argv, argv + argc);
  for (auto it = args.begin(); it != args.end();) {
    const std::string arg = *it;
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(sizeof("--trace-out=") - 1);
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  if (!trace_out.empty()) dls::obs::set_active(true);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!trace_out.empty()) {
    dls::obs::set_active(false);
    if (!dls::obs::export_chrome_trace_file(trace_out)) {
      std::cerr << "error: cannot write trace to " << trace_out << '\n';
      return 1;
    }
  }
  return 0;
}
