// Experiment DYNAMICS — repeated-game consequence of Theorem 5.3: with
// every agent learning by best response, the population collapses to
// all-truthful bidding from ANY starting profile, and it does so in a
// single revision round (dominant strategies do not depend on what the
// others bid).
#include <iostream>

#include "analysis/learning.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "net/networks.hpp"

int main() {
  std::cout << "=== DYNAMICS: best-response convergence to truth ===\n\n";

  // ---- One run in detail.
  {
    const dls::net::LinearNetwork net({1.0, 1.3, 0.9, 1.1, 0.7},
                                      {0.2, 0.1, 0.3, 0.15});
    dls::analysis::LearningConfig config;
    config.seed = 7;
    const auto trace = dls::analysis::run_best_response_dynamics(net, config);
    dls::common::Table table({{"epoch"},
                              {"mult P1"},
                              {"mult P2"},
                              {"mult P3"},
                              {"mult P4"},
                              {"total utility"}});
    for (std::size_t e = 0; e < trace.epochs_run; ++e) {
      double total = 0.0;
      for (const double u : trace.utilities[e]) total += u;
      table.add_row({e, dls::common::Cell(trace.multipliers[e][0], 2),
                     dls::common::Cell(trace.multipliers[e][1], 2),
                     dls::common::Cell(trace.multipliers[e][2], 2),
                     dls::common::Cell(trace.multipliers[e][3], 2),
                     dls::common::Cell(total, 4)});
    }
    table.print(std::cout);
    std::cout << "converged to all-truthful: "
              << (trace.converged_to_truth ? "yes" : "NO") << " after "
              << trace.epochs_to_truth << " epoch(s)\n\n";
  }

  // ---- Convergence statistics over random instances and starts.
  {
    dls::common::Rng rng(2024);
    dls::common::OnlineStats epochs;
    int converged = 0;
    constexpr int kRuns = 200;
    for (int run = 0; run < kRuns; ++run) {
      const auto m = static_cast<std::size_t>(rng.uniform_int(1, 10));
      const auto net = dls::net::LinearNetwork::random(
          m + 1, rng, 0.5, 5.0, 0.05, 0.5);
      dls::analysis::LearningConfig config;
      config.seed = rng.bits();
      const auto trace =
          dls::analysis::run_best_response_dynamics(net, config);
      if (trace.converged_to_truth) {
        ++converged;
        epochs.add(static_cast<double>(trace.epochs_to_truth));
      }
    }
    std::cout << "random instances: " << converged << "/" << kRuns
              << " converged to all-truthful ("
              << (converged == kRuns ? "PASS" : "FAIL") << ")\n"
              << "epochs to truth: mean " << epochs.mean() << ", max "
              << epochs.max()
              << " (dominant strategies -> 1 revision round)\n";
  }
  return 0;
}
