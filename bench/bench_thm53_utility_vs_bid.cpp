// Experiment THM5.3a — Lemma 5.3 / Theorem 5.3 (strategyproofness in the
// bid): utility of a strategic processor as a function of its bid, with
// everyone else truthful.
//
// Reproduction targets: every curve is single-peaked with its maximum at
// w_i = t_i (a kink, not a smooth peak — the bonus switches between the
// "own computation" and "tail completion" arms of eq. 2.3 exactly at the
// truth), for terminal AND interior processors, across randomized
// instances. The closing sweep certifies a zero advantage gap on a dense
// grid over many instances.
#include <iostream>

#include "analysis/experiments.hpp"
#include "analysis/sweep.hpp"
#include "common/ascii_plot.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "exec/thread_pool.hpp"
#include "net/networks.hpp"

int main() {
  std::cout << "=== THM5.3a: utility vs bid (truth-telling dominates) ===\n\n";
  const dls::core::MechanismConfig config;

  // ---- The headline curves on a fixed instance.
  const dls::net::LinearNetwork network({1.0, 1.2, 0.8, 1.5},
                                        {0.2, 0.15, 0.25});
  for (const std::size_t i : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    const double t = network.w(i);
    const auto grid = dls::analysis::linspace(0.3 * t, 3.0 * t, 49);
    const auto curve =
        dls::analysis::utility_vs_bid(network, i, grid, config);
    dls::common::Series series{"U_" + std::to_string(i), curve.bids,
                               curve.utilities, '*'};
    dls::common::plot(
        std::cout, series,
        {.width = 66,
         .height = 13,
         .x_label = "bid w_" + std::to_string(i) +
                    " (truth t = " + dls::common::format_double(t, 2) + ")",
         .y_label = "utility",
         .title = "P" + std::to_string(i) +
                  (i + 1 == network.size() ? " (terminal)" : " (interior)")});
    const std::size_t peak = dls::common::argmax(curve.utilities);
    std::cout << "peak at bid = " << curve.bids[peak]
              << ", truth = " << t << ", U(truth) = "
              << curve.utility_at_truth << "\n\n";
  }

  // ---- Table: advantage gap per position on the fixed instance.
  {
    dls::common::Table table({{"processor", dls::common::Align::kLeft},
                              {"U(truth)"},
                              {"best grid bid"},
                              {"max advantage over truth"},
                              {"strategyproof?", dls::common::Align::kLeft}});
    for (std::size_t i = 1; i < network.size(); ++i) {
      const double t = network.w(i);
      const auto grid = dls::analysis::logspace(0.2 * t, 5.0 * t, 201);
      const auto curve =
          dls::analysis::utility_vs_bid(network, i, grid, config);
      const double gap = dls::analysis::max_truth_advantage_gap(curve);
      const std::size_t best = dls::common::argmax(curve.utilities);
      table.add_row({"P" + std::to_string(i),
                     dls::common::Cell(curve.utility_at_truth, 6),
                     dls::common::Cell(curve.bids[best], 4),
                     dls::common::Cell(gap, 12),
                     gap <= 1e-9 ? "yes" : "NO"});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  // ---- Randomized certification sweep (threaded; per-index RNG streams
  // keep the output identical at any worker count).
  {
    constexpr std::size_t kInstances = 600;
    std::vector<double> gap(kInstances);
    dls::exec::ThreadPool::global().parallel_for(kInstances, [&](std::size_t rep) {
      dls::common::Rng rng(531 + 7919 * rep);
      const auto m = static_cast<std::size_t>(rng.uniform_int(1, 12));
      const auto net = dls::net::LinearNetwork::random(
          m + 1, rng, dls::analysis::kWLo, dls::analysis::kWHi,
          dls::analysis::kZLo, dls::analysis::kZHi);
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(m)));
      const double t = net.w(i);
      const auto grid = dls::analysis::logspace(0.2 * t, 5.0 * t, 61);
      const auto curve = dls::analysis::utility_vs_bid(net, i, grid, config);
      gap[rep] = dls::analysis::max_truth_advantage_gap(curve);
    });
    dls::common::OnlineStats gaps;
    int violations = 0;
    for (const double g : gap) {
      gaps.add(g);
      if (g > 1e-9) ++violations;
    }
    std::cout << "randomized certification: " << kInstances
              << " (instance, processor) pairs x 61-point bid grids ("
              << dls::exec::ThreadPool::global().worker_count()
              << " threads)\n"
              << "max advantage over truth: " << gaps.max()
              << "  violations: " << violations << " ("
              << (violations == 0 ? "PASS" : "FAIL") << ")\n";
  }
  return 0;
}
