// Experiment PERF — engineering microbenchmarks (google-benchmark):
// solver scaling, event-engine throughput, signature costs, full
// protocol rounds, and the sweep-engine hot paths (workspace solves,
// incremental counterfactual re-solves, pool dispatch). These quantify
// that the library is usable at scale: Algorithm 1 is O(m), a
// utility-vs-bid sweep point costs O(j) with zero allocations through
// the incremental engine, and a full four-phase protocol round on a
// 64-node chain costs well under a millisecond of real work plus crypto.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "agents/agent.hpp"
#include "analysis/multiround.hpp"
#include "analysis/sweep.hpp"
#include "common/rng.hpp"
#include "core/dls_lbl.hpp"
#include "crypto/pki.hpp"
#include "crypto/signed_claim.hpp"
#include "dlt/affine.hpp"
#include "dlt/batch.hpp"
#include "dlt/counterfactual.hpp"
#include "dlt/linear.hpp"
#include "dlt/tree.hpp"
#include "exec/thread_pool.hpp"
#include "net/networks.hpp"
#include "net/tree.hpp"
#include "obs/obs.hpp"
#include "obs/trace_export.hpp"
#include "protocol/runner.hpp"
#include "sim/linear_execution.hpp"
#include "sim/simulator.hpp"

// --------------------------------------------------------------------
// Heap-allocation instrumentation: the global new/delete pair counts
// allocations per thread so the hot-path benches can assert/report
// "zero allocations per solve" as a number, not a claim.
namespace {
thread_local std::uint64_t t_alloc_count = 0;
std::uint64_t alloc_count() noexcept { return t_alloc_count; }
}  // namespace

void* operator new(std::size_t size) {
  ++t_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++t_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
// GCC pairs these frees with its builtin operator new and warns; the
// replacement new above really does use malloc, so the pair matches.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

dls::net::LinearNetwork network_of(std::size_t n) {
  dls::common::Rng rng(7);
  return dls::net::LinearNetwork::random(n, rng, 0.5, 5.0, 0.05, 0.5);
}

void bm_solver(benchmark::State& state) {
  const auto net = network_of(static_cast<std::size_t>(state.range(0)));
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t before = alloc_count();
    benchmark::DoNotOptimize(dls::dlt::solve_linear_boundary(net).makespan);
    allocs += alloc_count() - before;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["allocs_per_solve"] =
      static_cast<double>(allocs) /
      static_cast<double>(std::max<std::int64_t>(state.iterations(), 1));
}
BENCHMARK(bm_solver)->RangeMultiplier(16)->Range(16, 1 << 20);

// The workspace flavour of Algorithm 1: identical arithmetic, zero heap
// allocations per solve once the buffers have warmed (the counter proves
// it), and the reduction trace skipped.
void bm_solver_workspace(benchmark::State& state) {
  const auto net = network_of(static_cast<std::size_t>(state.range(0)));
  dls::dlt::LinearSolverWorkspace ws;
  dls::dlt::solve_linear_boundary(net, ws);  // warm the buffers
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t before = alloc_count();
    benchmark::DoNotOptimize(dls::dlt::solve_linear_boundary(net, ws).makespan);
    allocs += alloc_count() - before;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["allocs_per_solve"] =
      static_cast<double>(allocs) /
      static_cast<double>(std::max<std::int64_t>(state.iterations(), 1));
}
BENCHMARK(bm_solver_workspace)->RangeMultiplier(16)->Range(16, 1 << 20);

// ---------------------------------------------------------------------
// The batched SoA engine: K instances of one chain length solved in
// lockstep so the per-step recurrence runs across lanes (AVX2/NEON when
// compiled in and supported, scalar otherwise — bit-identical either
// way). Zero heap allocations per batched solve once the arena has
// warmed; that is asserted (SkipWithError), not just reported.
constexpr std::size_t kBatchChain = 64;

std::vector<dls::net::LinearNetwork> batch_instances(std::size_t lanes) {
  dls::common::Rng rng(11);
  std::vector<dls::net::LinearNetwork> nets;
  nets.reserve(lanes);
  for (std::size_t k = 0; k < lanes; ++k) {
    nets.push_back(
        dls::net::LinearNetwork::random(kBatchChain, rng, 0.5, 5.0, 0.05, 0.5));
  }
  return nets;
}

void run_solver_batch(benchmark::State& state, dls::dlt::BatchKernel kernel) {
  const auto lanes = static_cast<std::size_t>(state.range(0));
  const auto nets = batch_instances(lanes);
  dls::dlt::BatchLinearSolver solver;
  solver.reserve(kBatchChain, lanes);
  const auto solve_once = [&] {
    solver.begin(kBatchChain, lanes);
    for (std::size_t k = 0; k < lanes; ++k) solver.set_instance(k, nets[k]);
    solver.solve(kernel);
  };
  solve_once();  // warm the arena
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t before = alloc_count();
    solve_once();
    benchmark::DoNotOptimize(solver.makespan(lanes - 1));
    allocs += alloc_count() - before;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(lanes) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["allocs_per_solve"] =
      static_cast<double>(allocs) /
      static_cast<double>(std::max<std::int64_t>(state.iterations(), 1));
  state.counters["simd"] = dls::dlt::batch_simd_available() &&
                                   kernel != dls::dlt::BatchKernel::kScalar
                               ? 1.0
                               : 0.0;
  if (allocs != 0) state.SkipWithError("batched solve allocated after warm-up");
}

void bm_solver_batch(benchmark::State& state) {
  run_solver_batch(state, dls::dlt::BatchKernel::kAuto);
}
BENCHMARK(bm_solver_batch)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void bm_solver_batch_scalar(benchmark::State& state) {
  run_solver_batch(state, dls::dlt::BatchKernel::kScalar);
}
BENCHMARK(bm_solver_batch_scalar)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// Back-to-back comparison: one K=256 batched solve versus 256 sequential
// workspace solves of the same instances. The counter is the measured
// throughput ratio; its floor_ prefix makes check_perf_regression.py
// treat it as a minimum (dropping below baseline/threshold fails CI),
// pinning the ">= 3x" acceptance bar as a gated number.
void bm_solver_batch_speedup(benchmark::State& state) {
  constexpr std::size_t kLanes = 256;
  const auto nets = batch_instances(kLanes);
  dls::dlt::BatchLinearSolver solver;
  solver.reserve(kBatchChain, kLanes);
  dls::dlt::LinearSolverWorkspace ws;
  dls::dlt::solve_linear_boundary(nets[0], ws);  // warm both paths
  using clock = std::chrono::steady_clock;
  double batch_seconds = 0.0;
  double scalar_seconds = 0.0;
  for (auto _ : state) {
    const auto t0 = clock::now();
    solver.begin(kBatchChain, kLanes);
    for (std::size_t k = 0; k < kLanes; ++k) solver.set_instance(k, nets[k]);
    solver.solve();
    const auto t1 = clock::now();
    double acc = solver.makespan(0);
    for (std::size_t k = 0; k < kLanes; ++k) {
      acc += dls::dlt::solve_linear_boundary(nets[k], ws).makespan;
    }
    const auto t2 = clock::now();
    batch_seconds += std::chrono::duration<double>(t1 - t0).count();
    scalar_seconds += std::chrono::duration<double>(t2 - t1).count();
    benchmark::DoNotOptimize(acc);
  }
  state.counters["floor_speedup_vs_scalar"] =
      batch_seconds > 0.0 ? scalar_seconds / batch_seconds : 0.0;
}
BENCHMARK(bm_solver_batch_speedup)->Unit(benchmark::kMicrosecond);

// Batched mechanism assessment: one SoA solve for K bid networks, then
// a per-lane compliant assessment taking its allocation straight from
// the lane (no second Algorithm 1 run per instance).
void bm_assess_batch(benchmark::State& state) {
  const auto lanes = static_cast<std::size_t>(state.range(0));
  const auto nets = batch_instances(lanes);
  const dls::core::MechanismConfig config;
  dls::dlt::BatchLinearSolver solver;
  solver.reserve(kBatchChain, lanes);
  dls::core::AssessWorkspace ws;
  for (auto _ : state) {
    solver.begin(kBatchChain, lanes);
    for (std::size_t k = 0; k < lanes; ++k) solver.set_instance(k, nets[k]);
    solver.solve();
    double acc = 0.0;
    for (std::size_t k = 0; k < lanes; ++k) {
      acc += dls::core::assess_compliant_from_batch(
                 nets[k], solver, k, nets[k].processing_times(), config, ws)
                 .total_payment;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(lanes) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_assess_batch)->Arg(16)->Arg(256);

void bm_mechanism_assessment(benchmark::State& state) {
  const auto net = network_of(static_cast<std::size_t>(state.range(0)));
  std::vector<double> actual(net.processing_times().begin(),
                             net.processing_times().end());
  const dls::core::MechanismConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dls::core::assess_compliant(net, actual, config).total_payment);
  }
}
BENCHMARK(bm_mechanism_assessment)->RangeMultiplier(16)->Range(16, 1 << 16);

void bm_mechanism_assessment_workspace(benchmark::State& state) {
  const auto net = network_of(static_cast<std::size_t>(state.range(0)));
  std::vector<double> actual(net.processing_times().begin(),
                             net.processing_times().end());
  const dls::core::MechanismConfig config;
  dls::core::AssessWorkspace ws;
  dls::core::assess_compliant(net, actual, config, ws);  // warm the buffers
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t before = alloc_count();
    benchmark::DoNotOptimize(
        dls::core::assess_compliant(net, actual, config, ws).total_payment);
    allocs += alloc_count() - before;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["allocs_per_assess"] =
      static_cast<double>(allocs) /
      static_cast<double>(std::max<std::int64_t>(state.iterations(), 1));
}
BENCHMARK(bm_mechanism_assessment_workspace)
    ->RangeMultiplier(16)
    ->Range(16, 1 << 16);

// ---------------------------------------------------------------------
// The Theorem 5.3 hot path: utility vs bid for every strategic processor
// of a 64-node chain, 256 bid points each. The "full" flavour rebuilds
// the bid network and runs a complete n-processor assessment per point
// (two Algorithm 1 passes plus n payment evaluations); the "incremental"
// flavour answers each point through CounterfactualMechanism — an O(j)
// prefix re-reduction and a single payment evaluation, allocation-free.
constexpr std::size_t kSweepChain = 64;
constexpr std::size_t kSweepBids = 256;

void bm_utility_sweep_full(benchmark::State& state) {
  const auto net = network_of(kSweepChain);
  const std::vector<double> actual(net.processing_times().begin(),
                                   net.processing_times().end());
  const dls::core::MechanismConfig config;
  const auto multipliers = dls::analysis::logspace(0.25, 4.0, kSweepBids);
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t j = 1; j < net.size(); ++j) {
      for (const double mult : multipliers) {
        const auto bid_net = net.with_processing_time(j, net.w(j) * mult);
        acc += dls::core::assess_compliant(bid_net, actual, config)
                   .processors[j]
                   .money.utility;
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>((kSweepChain - 1) * kSweepBids) *
      static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_utility_sweep_full)->Unit(benchmark::kMillisecond);

void bm_utility_sweep_incremental(benchmark::State& state) {
  const auto net = network_of(kSweepChain);
  const std::vector<double> actual(net.processing_times().begin(),
                                   net.processing_times().end());
  const dls::core::MechanismConfig config;
  const auto multipliers = dls::analysis::logspace(0.25, 4.0, kSweepBids);
  std::vector<double> bids(kSweepBids);
  std::vector<double> utilities(kSweepBids);
  dls::core::CounterfactualMechanism mech(net, actual, config);
  for (std::size_t k = 0; k < kSweepBids; ++k) {
    bids[k] = net.w(1) * multipliers[k];
  }
  mech.utility_curve(1, bids, utilities);  // warm the rebid scratch
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    double acc = 0.0;
    const std::uint64_t before = alloc_count();
    for (std::size_t j = 1; j < net.size(); ++j) {
      for (std::size_t k = 0; k < kSweepBids; ++k) {
        bids[k] = net.w(j) * multipliers[k];
      }
      mech.utility_curve(j, bids, utilities);
      for (const double u : utilities) acc += u;
    }
    allocs += alloc_count() - before;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>((kSweepChain - 1) * kSweepBids) *
      static_cast<std::int64_t>(state.iterations()));
  state.counters["allocs_per_sweep"] =
      static_cast<double>(allocs) /
      static_cast<double>(std::max<std::int64_t>(state.iterations(), 1));
}
BENCHMARK(bm_utility_sweep_incremental)->Unit(benchmark::kMillisecond);

// Runs both flavours back to back and reports the measured ratio as a
// counter, so the ">= 5x" claim is a number in the benchmark output
// rather than arithmetic the reader does across two rows.
void bm_utility_sweep_speedup(benchmark::State& state) {
  const auto net = network_of(kSweepChain);
  const std::vector<double> actual(net.processing_times().begin(),
                                   net.processing_times().end());
  const dls::core::MechanismConfig config;
  const auto multipliers = dls::analysis::logspace(0.25, 4.0, kSweepBids);
  std::vector<double> bids(kSweepBids);
  std::vector<double> utilities(kSweepBids);
  dls::core::CounterfactualMechanism mech(net, actual, config);
  using clock = std::chrono::steady_clock;
  double full_seconds = 0.0;
  double incremental_seconds = 0.0;
  for (auto _ : state) {
    double acc = 0.0;
    const auto t0 = clock::now();
    for (std::size_t j = 1; j < net.size(); ++j) {
      for (const double mult : multipliers) {
        const auto bid_net = net.with_processing_time(j, net.w(j) * mult);
        acc += dls::core::assess_compliant(bid_net, actual, config)
                   .processors[j]
                   .money.utility;
      }
    }
    const auto t1 = clock::now();
    for (std::size_t j = 1; j < net.size(); ++j) {
      for (std::size_t k = 0; k < kSweepBids; ++k) {
        bids[k] = net.w(j) * multipliers[k];
      }
      mech.utility_curve(j, bids, utilities);
      for (const double u : utilities) acc += u;
    }
    const auto t2 = clock::now();
    full_seconds += std::chrono::duration<double>(t1 - t0).count();
    incremental_seconds += std::chrono::duration<double>(t2 - t1).count();
    benchmark::DoNotOptimize(acc);
  }
  state.counters["speedup"] =
      incremental_seconds > 0.0 ? full_seconds / incremental_seconds : 0.0;
}
BENCHMARK(bm_utility_sweep_speedup)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Pool dispatch latency: the fixed cost of fanning a trivial job out to
// the persistent work-stealing pool and waiting for completion. Compare
// with bm_spawn_join_dispatch, the spawn-per-call pattern the pool
// replaced in the old analysis-layer sweep driver.
void bm_pool_dispatch(benchmark::State& state) {
  auto& pool = dls::exec::ThreadPool::global();
  const std::size_t chunks = std::max<std::size_t>(pool.worker_count(), 1);
  for (auto _ : state) {
    pool.parallel_for_chunks(
        chunks, [](std::size_t begin, std::size_t end) {
          benchmark::DoNotOptimize(begin + end);
        },
        {.grain = 1});
  }
  state.counters["workers"] = static_cast<double>(pool.worker_count());
}
BENCHMARK(bm_pool_dispatch);

void bm_spawn_join_dispatch(benchmark::State& state) {
  const std::size_t threads =
      std::max<std::size_t>(dls::exec::ThreadPool::global().worker_count(), 1);
  for (auto _ : state) {
    std::vector<std::thread> crew;
    crew.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      crew.emplace_back([i] { benchmark::DoNotOptimize(i); });
    }
    for (auto& t : crew) t.join();
  }
  state.counters["workers"] = static_cast<double>(threads);
}
BENCHMARK(bm_spawn_join_dispatch);

void bm_event_engine(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    dls::sim::Simulator sim;
    for (std::size_t i = 0; i < events; ++i) {
      sim.schedule_at(static_cast<double>(i % 97), [](dls::sim::Simulator&) {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_event_engine)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void bm_chain_simulation(benchmark::State& state) {
  const auto net = network_of(static_cast<std::size_t>(state.range(0)));
  const auto sol = dls::dlt::solve_linear_boundary(net);
  const auto plan = dls::sim::ExecutionPlan::compliant(net, sol);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dls::sim::execute_linear(net, plan).makespan);
  }
}
BENCHMARK(bm_chain_simulation)->RangeMultiplier(8)->Range(8, 1 << 12);

void bm_sign_claim(benchmark::State& state) {
  dls::common::Rng rng(3);
  dls::crypto::KeyRegistry registry;
  const auto signer = registry.enroll(1, rng);
  const dls::crypto::Claim claim{dls::crypto::ClaimKind::kEquivalentBid, 1,
                                 1, 1.25};
  for (auto _ : state) {
    benchmark::DoNotOptimize(dls::crypto::make_signed(signer, claim).sig);
  }
}
BENCHMARK(bm_sign_claim);

void bm_verify_claim(benchmark::State& state) {
  dls::common::Rng rng(3);
  dls::crypto::KeyRegistry registry;
  const auto signer = registry.enroll(1, rng);
  const auto sc = dls::crypto::make_signed(
      signer,
      dls::crypto::Claim{dls::crypto::ClaimKind::kEquivalentBid, 1, 1, 1.25});
  for (auto _ : state) {
    benchmark::DoNotOptimize(dls::crypto::verify(registry, sc));
  }
}
BENCHMARK(bm_verify_claim);

void bm_tree_solver(benchmark::State& state) {
  dls::common::Rng rng(7);
  const dls::net::TreeNetwork tree = dls::net::TreeNetwork::random(
      static_cast<std::size_t>(state.range(0)), rng, 0.5, 5.0, 0.05, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dls::dlt::solve_tree(tree).makespan);
  }
}
BENCHMARK(bm_tree_solver)->RangeMultiplier(16)->Range(16, 1 << 16);

void bm_affine_solver(benchmark::State& state) {
  dls::common::Rng rng(7);
  const auto net = network_of(static_cast<std::size_t>(state.range(0)));
  std::vector<double> startup(net.size());
  for (auto& s : startup) s = rng.uniform(0.0, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dls::dlt::solve_linear_boundary_affine(net, startup).makespan);
  }
}
BENCHMARK(bm_affine_solver)->Arg(8)->Arg(64)->Arg(512);

void bm_multiround_optimizer(benchmark::State& state) {
  dls::common::Rng rng(7);
  const dls::net::StarNetwork star = dls::net::StarNetwork::random(
      static_cast<std::size_t>(state.range(0)), rng, 0.5, 5.0, 0.05, 0.5,
      true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dls::analysis::solve_multiround_star(star, 4).makespan);
  }
}
BENCHMARK(bm_multiround_optimizer)->Arg(4)->Arg(16);

void bm_full_protocol_round(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto net = network_of(m + 1);
  std::vector<dls::agents::StrategicAgent> agents;
  for (std::size_t i = 1; i <= m; ++i) {
    agents.push_back(dls::agents::StrategicAgent{
        i, net.w(i), dls::agents::Behavior::truthful()});
  }
  const dls::agents::Population population(std::move(agents));
  dls::protocol::ProtocolOptions options;
  options.blocks_per_unit = 1024;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dls::protocol::run_protocol(net, population, options).makespan);
  }
}
BENCHMARK(bm_full_protocol_round)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): honours --trace-out=FILE (or
// the DLS_TRACE_OUT environment variable) by collecting an execution
// trace across the whole run and writing Chrome trace JSON on exit.
int main(int argc, char** argv) {
  std::string trace_out;
  if (const char* env = std::getenv("DLS_TRACE_OUT")) trace_out = env;
  std::vector<char*> args(argv, argv + argc);
  for (auto it = args.begin(); it != args.end();) {
    const std::string arg = *it;
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(sizeof("--trace-out=") - 1);
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  if (!trace_out.empty()) dls::obs::set_active(true);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!trace_out.empty()) {
    dls::obs::set_active(false);
    if (!dls::obs::export_chrome_trace_file(trace_out)) {
      std::cerr << "error: cannot write trace to " << trace_out << '\n';
      return 1;
    }
  }
  return 0;
}
