// Experiment PERF — engineering microbenchmarks (google-benchmark):
// solver scaling, event-engine throughput, signature costs and full
// protocol rounds. These quantify that the library is usable at scale:
// Algorithm 1 is O(m), a full four-phase protocol round on a 64-node
// chain costs well under a millisecond of real work plus crypto.
#include <benchmark/benchmark.h>

#include "agents/agent.hpp"
#include "analysis/multiround.hpp"
#include "common/rng.hpp"
#include "core/dls_lbl.hpp"
#include "crypto/pki.hpp"
#include "crypto/signed_claim.hpp"
#include "dlt/affine.hpp"
#include "dlt/linear.hpp"
#include "dlt/tree.hpp"
#include "net/networks.hpp"
#include "net/tree.hpp"
#include "protocol/runner.hpp"
#include "sim/linear_execution.hpp"
#include "sim/simulator.hpp"

namespace {

dls::net::LinearNetwork network_of(std::size_t n) {
  dls::common::Rng rng(7);
  return dls::net::LinearNetwork::random(n, rng, 0.5, 5.0, 0.05, 0.5);
}

void bm_solver(benchmark::State& state) {
  const auto net = network_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dls::dlt::solve_linear_boundary(net).makespan);
  }
}
BENCHMARK(bm_solver)->RangeMultiplier(16)->Range(16, 1 << 20);

void bm_mechanism_assessment(benchmark::State& state) {
  const auto net = network_of(static_cast<std::size_t>(state.range(0)));
  std::vector<double> actual(net.processing_times().begin(),
                             net.processing_times().end());
  const dls::core::MechanismConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dls::core::assess_compliant(net, actual, config).total_payment);
  }
}
BENCHMARK(bm_mechanism_assessment)->RangeMultiplier(16)->Range(16, 1 << 16);

void bm_event_engine(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    dls::sim::Simulator sim;
    for (std::size_t i = 0; i < events; ++i) {
      sim.schedule_at(static_cast<double>(i % 97), [](dls::sim::Simulator&) {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_event_engine)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void bm_chain_simulation(benchmark::State& state) {
  const auto net = network_of(static_cast<std::size_t>(state.range(0)));
  const auto sol = dls::dlt::solve_linear_boundary(net);
  const auto plan = dls::sim::ExecutionPlan::compliant(net, sol);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dls::sim::execute_linear(net, plan).makespan);
  }
}
BENCHMARK(bm_chain_simulation)->RangeMultiplier(8)->Range(8, 1 << 12);

void bm_sign_claim(benchmark::State& state) {
  dls::common::Rng rng(3);
  dls::crypto::KeyRegistry registry;
  const auto signer = registry.enroll(1, rng);
  const dls::crypto::Claim claim{dls::crypto::ClaimKind::kEquivalentBid, 1,
                                 1, 1.25};
  for (auto _ : state) {
    benchmark::DoNotOptimize(dls::crypto::make_signed(signer, claim).sig);
  }
}
BENCHMARK(bm_sign_claim);

void bm_verify_claim(benchmark::State& state) {
  dls::common::Rng rng(3);
  dls::crypto::KeyRegistry registry;
  const auto signer = registry.enroll(1, rng);
  const auto sc = dls::crypto::make_signed(
      signer,
      dls::crypto::Claim{dls::crypto::ClaimKind::kEquivalentBid, 1, 1, 1.25});
  for (auto _ : state) {
    benchmark::DoNotOptimize(dls::crypto::verify(registry, sc));
  }
}
BENCHMARK(bm_verify_claim);

void bm_tree_solver(benchmark::State& state) {
  dls::common::Rng rng(7);
  const dls::net::TreeNetwork tree = dls::net::TreeNetwork::random(
      static_cast<std::size_t>(state.range(0)), rng, 0.5, 5.0, 0.05, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dls::dlt::solve_tree(tree).makespan);
  }
}
BENCHMARK(bm_tree_solver)->RangeMultiplier(16)->Range(16, 1 << 16);

void bm_affine_solver(benchmark::State& state) {
  dls::common::Rng rng(7);
  const auto net = network_of(static_cast<std::size_t>(state.range(0)));
  std::vector<double> startup(net.size());
  for (auto& s : startup) s = rng.uniform(0.0, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dls::dlt::solve_linear_boundary_affine(net, startup).makespan);
  }
}
BENCHMARK(bm_affine_solver)->Arg(8)->Arg(64)->Arg(512);

void bm_multiround_optimizer(benchmark::State& state) {
  dls::common::Rng rng(7);
  const dls::net::StarNetwork star = dls::net::StarNetwork::random(
      static_cast<std::size_t>(state.range(0)), rng, 0.5, 5.0, 0.05, 0.5,
      true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dls::analysis::solve_multiround_star(star, 4).makespan);
  }
}
BENCHMARK(bm_multiround_optimizer)->Arg(4)->Arg(16);

void bm_full_protocol_round(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto net = network_of(m + 1);
  std::vector<dls::agents::StrategicAgent> agents;
  for (std::size_t i = 1; i <= m; ++i) {
    agents.push_back(dls::agents::StrategicAgent{
        i, net.w(i), dls::agents::Behavior::truthful()});
  }
  const dls::agents::Population population(std::move(agents));
  dls::protocol::ProtocolOptions options;
  options.blocks_per_unit = 1024;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dls::protocol::run_protocol(net, population, options).makespan);
  }
}
BENCHMARK(bm_full_protocol_round)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
