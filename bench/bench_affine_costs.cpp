// Experiment AFFINE — the LINEAR BOUNDARY-AFFINE extension: what happens
// to the paper's linear-cost results when processors pay fixed compute
// startups.
//
// Reproduction/extension targets: with zero startups the affine solver
// reproduces Algorithm 1 exactly; uniform startups shift every finish
// time but keep full participation (Theorem 2.1 survives); a startup
// gradient breaks the all-participate property — the solver starts
// truncating and skipping processors, and the makespan curve bends where
// participation drops.
#include <iostream>

#include "analysis/sweep.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "dlt/affine.hpp"
#include "dlt/linear.hpp"
#include "net/networks.hpp"

int main() {
  std::cout << "=== AFFINE: compute startups vs Theorem 2.1 ===\n\n";

  // ---- Exactness at s = 0.
  {
    dls::common::Rng rng(11);
    double worst = 0.0;
    for (int rep = 0; rep < 100; ++rep) {
      const auto m = static_cast<std::size_t>(rng.uniform_int(1, 20));
      const auto net = dls::net::LinearNetwork::random(
          m + 1, rng, 0.5, 5.0, 0.05, 0.5);
      const std::vector<double> zero(net.size(), 0.0);
      const auto affine = dls::dlt::solve_linear_boundary_affine(net, zero);
      const auto linear = dls::dlt::solve_linear_boundary(net);
      worst = std::max(worst,
                       std::abs(affine.makespan - linear.makespan));
    }
    std::cout << "s = 0 reduction to Algorithm 1: max |T_affine - T_alg1| "
              << "over 100 random instances = " << worst << " ("
              << (worst <= 1e-9 ? "PASS" : "FAIL") << ")\n\n";
  }

  // ---- Participation and makespan vs startup gradient.
  {
    std::cout << "--- homogeneous chain (m+1 = 12, w = 1, z = 0.2), "
                 "startup s_i = g * i ---\n";
    const auto net = dls::net::LinearNetwork::uniform(12, 1.0, 0.2);
    const double linear_t = dls::dlt::solve_linear_boundary(net).makespan;
    dls::common::Table table({{"gradient g"},
                              {"participants"},
                              {"makespan"},
                              {"vs zero-startup optimum"}});
    for (const double g : dls::analysis::logspace(0.001, 3.0, 12)) {
      std::vector<double> startup(net.size());
      for (std::size_t i = 0; i < net.size(); ++i) {
        startup[i] = g * static_cast<double>(i);
      }
      const auto sol = dls::dlt::solve_linear_boundary_affine(net, startup);
      table.add_row({dls::common::Cell(g, 4), sol.participants,
                     dls::common::Cell(sol.makespan, 4),
                     dls::common::Cell(sol.makespan / linear_t, 2)});
    }
    table.print(std::cout);
    std::cout << "\nParticipation decays as deep processors become too "
                 "expensive to wake up —\nthe affine model breaks the "
                 "all-participate optimum of Theorem 2.1.\n\n";
  }

  // ---- Interior skip: a poisoned middle processor is relayed through.
  {
    std::cout << "--- relay-through: P2 of a 5-chain with a growing "
                 "startup ---\n";
    const auto net = dls::net::LinearNetwork::uniform(5, 1.0, 0.1);
    dls::common::Table table({{"s_2"},
                              {"alpha_2"},
                              {"P2 computes?", dls::common::Align::kLeft},
                              {"makespan"}});
    for (const double s2 : {0.0, 0.1, 0.3, 0.6, 1.2, 2.4}) {
      std::vector<double> startup(net.size(), 0.0);
      startup[2] = s2;
      const auto sol = dls::dlt::solve_linear_boundary_affine(net, startup);
      table.add_row({dls::common::Cell(s2, 2),
                     dls::common::Cell(sol.alpha[2], 4),
                     sol.computes[2] ? "yes" : "no (pure relay)",
                     dls::common::Cell(sol.makespan, 4)});
    }
    table.print(std::cout);
    std::cout << "\nOnce s_2 outweighs its marginal help, P2 turns into a "
                 "pure relay — the chain\nkeeps its tail without paying "
                 "the poisoned startup.\n";
  }
  return 0;
}
