// Experiment AUDIT — Phase IV billing fraud vs the probabilistic audit:
// expected utility of an overcharging processor as a function of the
// audit probability q, with the fine F/q.
//
// Reproduction targets: analytic expected gain is (1-q)·x − q·(F/q) =
// (1-q)·x − F < 0 for every q in (0,1] once F exceeds the overcharge x;
// the simulated mean tracks the analytic line; deterrence holds even for
// tiny q because the fine scales as F/q.
#include <iostream>

#include "agents/agent.hpp"
#include "common/ascii_plot.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "net/networks.hpp"
#include "protocol/runner.hpp"

namespace {

using dls::agents::Behavior;
using dls::agents::Population;
using dls::agents::StrategicAgent;

Population population_for(const dls::net::LinearNetwork& net,
                          std::size_t deviant, const Behavior& b) {
  std::vector<StrategicAgent> agents;
  for (std::size_t i = 1; i < net.size(); ++i) {
    agents.push_back(StrategicAgent{
        i, net.w(i), i == deviant ? b : Behavior::truthful()});
  }
  return Population(std::move(agents));
}

}  // namespace

int main() {
  std::cout << "=== AUDIT: overcharging vs audit probability q ===\n\n";

  const dls::net::LinearNetwork net({1.0, 1.2, 0.8, 1.5},
                                    {0.2, 0.15, 0.25});
  const std::size_t deviant = 2;
  const double overcharge = 0.5;

  dls::protocol::ProtocolOptions base;
  const auto honest = dls::protocol::run_protocol(
      net, population_for(net, 0, Behavior::truthful()), base);
  const double honest_u = honest.processors[deviant].utility;

  // The auto-sized fine for this instance (what the runner charges).
  dls::protocol::ProtocolOptions probe = base;
  probe.mechanism.audit_probability = 1.0;
  const auto probe_report = dls::protocol::run_protocol(
      net, population_for(net, deviant, Behavior::overcharger(overcharge)),
      probe);
  const double fine = probe_report.incidents.at(0).fine;  // F/q with q=1

  dls::common::Table table({{"q"},
                            {"E[gain] analytic"},
                            {"mean gain simulated"},
                            {"caught fraction"},
                            {"deterred?", dls::common::Align::kLeft}});
  dls::common::Series analytic{"analytic", {}, {}, 'a'};
  dls::common::Series simulated{"simulated", {}, {}, 's'};

  constexpr int kRuns = 400;
  for (const double q : {0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0}) {
    dls::protocol::ProtocolOptions options;
    options.mechanism.audit_probability = q;
    dls::common::OnlineStats gain;
    int caught = 0;
    for (int s = 0; s < kRuns; ++s) {
      options.seed = static_cast<std::uint64_t>(s) * 2654435761u + 17;
      const auto report = dls::protocol::run_protocol(
          net, population_for(net, deviant,
                              Behavior::overcharger(overcharge)),
          options);
      gain.add(report.processors[deviant].utility - honest_u);
      if (!report.incidents.empty()) ++caught;
    }
    // F is charged as fine/q at audit time; expected gain:
    const double expected = (1.0 - q) * overcharge - fine;
    table.add_row({dls::common::Cell(q, 2),
                   dls::common::Cell(expected, 3),
                   dls::common::Cell(gain.mean(), 3),
                   dls::common::Cell(static_cast<double>(caught) / kRuns, 3),
                   gain.mean() < 0.0 ? "yes" : "NO"});
    analytic.xs.push_back(q);
    analytic.ys.push_back(expected);
    simulated.xs.push_back(q);
    simulated.ys.push_back(gain.mean());
  }
  table.print(std::cout);
  std::cout << "\n(auto-sized fine F = " << fine
            << "; overcharge x = " << overcharge << ")\n\n";

  const std::vector<dls::common::Series> series = {analytic, simulated};
  dls::common::plot(std::cout, series,
                    {.width = 64,
                     .height = 12,
                     .x_label = "audit probability q",
                     .y_label = "expected gain from overcharging",
                     .title = "deterrence: E[gain] < 0 for all q"});
  return 0;
}
