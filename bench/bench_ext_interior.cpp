// Experiment EXT-INT — the paper's future-work variant: linear networks
// with interior load origination.
//
// Reproduction targets: the interior root dominates the boundary root
// (it can feed two arms), the best root position on a homogeneous chain
// is the middle, and the benefit grows with the communication-to-
// computation ratio (relaying is what the interior root saves).
#include <iostream>

#include "analysis/sweep.hpp"
#include "common/ascii_plot.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/dls_interior.hpp"
#include "dlt/interior.hpp"
#include "dlt/linear.hpp"
#include "net/networks.hpp"

int main() {
  std::cout << "=== EXT-INT: interior vs boundary load origination ===\n\n";

  // ---- Root position sweep on a homogeneous chain.
  {
    const std::size_t n = 17;
    const double w = 1.0, z = 0.2;
    std::vector<double> ws(n, w), zs(n - 1, z);
    dls::common::Series series{"makespan", {}, {}, '*'};
    dls::common::Table table({{"root position"},
                              {"makespan"},
                              {"vs boundary"}});
    const double boundary =
        dls::dlt::solve_linear_boundary(dls::net::LinearNetwork(ws, zs))
            .makespan;
    table.add_row({0, dls::common::Cell(boundary, 4),
                   dls::common::Cell(1.0, 3)});
    series.xs.push_back(0);
    series.ys.push_back(boundary);
    for (std::size_t r = 1; r + 1 < n; ++r) {
      const dls::net::InteriorLinearNetwork net(ws, zs, r);
      const double t = dls::dlt::solve_linear_interior(net).makespan;
      table.add_row({r, dls::common::Cell(t, 4),
                     dls::common::Cell(t / boundary, 3)});
      series.xs.push_back(static_cast<double>(r));
      series.ys.push_back(t);
    }
    table.print(std::cout);
    std::cout << '\n';
    dls::common::plot(std::cout, series,
                      {.width = 64,
                       .height = 12,
                       .x_label = "root position in a 17-processor chain",
                       .y_label = "makespan",
                       .title = "makespan vs root position (w=1, z=0.2)"});
    std::cout << '\n';
  }

  // ---- Benefit of the interior root vs z/w ratio (root centred).
  {
    std::cout << "--- centre root advantage vs communication cost ---\n";
    dls::common::Table table({{"z/w"},
                              {"boundary root"},
                              {"interior (centre) root"},
                              {"improvement %"}});
    const std::size_t n = 17;
    for (const double z : dls::analysis::logspace(0.01, 1.0, 9)) {
      std::vector<double> ws(n, 1.0), zs(n - 1, z);
      const double boundary =
          dls::dlt::solve_linear_boundary(dls::net::LinearNetwork(ws, zs))
              .makespan;
      const double interior =
          dls::dlt::solve_linear_interior(
              dls::net::InteriorLinearNetwork(ws, zs, n / 2))
              .makespan;
      table.add_row({dls::common::Cell(z, 3),
                     dls::common::Cell(boundary, 4),
                     dls::common::Cell(interior, 4),
                     dls::common::Cell(100.0 * (1.0 - interior / boundary),
                                       1)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  // ---- Randomized dominance: with the root at an interior position,
  // using BOTH arms always beats ignoring one of them (i.e. the interior
  // solver dominates both single-arm boundary schedules rooted at the
  // same machine).
  {
    dls::common::Rng rng(4711);
    int violations = 0;
    constexpr int kInstances = 300;
    for (int rep = 0; rep < kInstances; ++rep) {
      const auto n = static_cast<std::size_t>(rng.uniform_int(3, 24));
      std::vector<double> ws(n), zs(n - 1);
      for (auto& x : ws) x = rng.log_uniform(0.5, 5.0);
      for (auto& x : zs) x = rng.log_uniform(0.05, 0.5);
      const auto r = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(n) - 2));
      const dls::net::InteriorLinearNetwork net(ws, zs, r);
      const double both =
          dls::dlt::solve_linear_interior(net).makespan;
      const double right_only =
          dls::dlt::solve_linear_boundary(net.right_chain()).makespan;
      const double left_only =
          dls::dlt::solve_linear_boundary(net.left_chain()).makespan;
      if (both > std::min(left_only, right_only) + 1e-9) ++violations;
    }
    std::cout << "randomized: serving both arms beats (or ties) the best "
                 "single-arm schedule in "
              << kInstances - violations << "/" << kInstances
              << " instances ("
              << (violations == 0 ? "PASS" : "FAIL") << ")\n\n";
  }

  // ---- Mechanism economics on interior chains (future-work mechanism).
  {
    dls::common::Rng rng(9911);
    const dls::core::MechanismConfig config;
    dls::common::OnlineStats truthful_min;
    double worst_gap = -1e300;
    int participation_violations = 0;
    constexpr int kInstances = 60;
    for (int rep = 0; rep < kInstances; ++rep) {
      const auto n = static_cast<std::size_t>(rng.uniform_int(3, 12));
      std::vector<double> ws(n), zs(n - 1), rates(n);
      for (std::size_t i = 0; i < n; ++i) ws[i] = rng.log_uniform(0.5, 5.0);
      for (auto& x : zs) x = rng.log_uniform(0.05, 0.5);
      rates = ws;
      const auto root = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(n) - 2));
      const dls::net::InteriorLinearNetwork net(ws, zs, root);
      const auto result =
          dls::core::assess_dls_interior(net, rates, config);
      for (std::size_t i = 0; i < n; ++i) {
        if (i == root) continue;
        truthful_min.add(result.processors[i].money.utility);
        if (result.processors[i].money.utility < -1e-9) {
          ++participation_violations;
        }
        const double t = net.w(i);
        const double truth_u =
            dls::core::interior_utility_under_bid(net, i, t, t, config);
        for (const double f : {0.5, 0.8, 1.25, 2.0}) {
          worst_gap = std::max(
              worst_gap, dls::core::interior_utility_under_bid(
                             net, i, t * f, t, config) -
                             truth_u);
        }
      }
    }
    std::cout << "DLS-LBL extended to interior roots, " << kInstances
              << " random instances:\n"
              << "  min truthful utility: " << truthful_min.min() << " ("
              << (participation_violations == 0 ? "PASS" : "FAIL")
              << " voluntary participation)\n"
              << "  max bid-deviation advantage: " << worst_gap << " ("
              << (worst_gap <= 1e-9 ? "PASS" : "FAIL")
              << " strategyproofness)\n";
  }
  return 0;
}
