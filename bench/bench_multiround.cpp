// Experiment MULTIROUND — multi-installment scheduling [21]: how much
// does splitting each worker's share into R installments shorten the
// schedule, and where does it stop paying?
//
// Reproduction targets (shape): multi-round gains grow with the
// communication-to-computation ratio (idle ramp-up is what it removes),
// returns diminish quickly in R, and for comm-light stars a single
// installment is already near-optimal.
#include <iostream>

#include "analysis/multiround.hpp"
#include "common/ascii_plot.hpp"
#include "common/table.hpp"
#include "dlt/star.hpp"
#include "net/networks.hpp"

int main() {
  std::cout << "=== MULTIROUND: installments vs makespan ===\n\n";

  // ---- Makespan vs rounds across comm regimes.
  {
    std::cout << "--- 6 identical workers (w = 1), computing root ---\n";
    dls::common::Table table({{"z/w"},
                              {"R=1"},
                              {"R=2"},
                              {"R=4"},
                              {"R=8"},
                              {"R=16"},
                              {"gain at R=16"}});
    std::vector<dls::common::Series> series;
    const char markers[] = {'a', 'b', 'c'};
    int mi = 0;
    for (const double z : {0.1, 0.4, 1.0}) {
      const dls::net::StarNetwork star(1.0, std::vector<double>(6, 1.0),
                                       std::vector<double>(6, z));
      std::vector<dls::common::Cell> row = {dls::common::Cell(z, 2)};
      dls::common::Series s;
      s.name = "z=" + dls::common::format_double(z, 1);
      s.marker = markers[mi++];
      double first = 0.0;
      double last = 0.0;
      for (const std::size_t rounds : {1u, 2u, 4u, 8u, 16u}) {
        const auto sol =
            dls::analysis::solve_multiround_star(star, rounds);
        row.push_back(dls::common::Cell(sol.makespan, 4));
        if (rounds == 1u) first = sol.makespan;
        last = sol.makespan;
        s.xs.push_back(static_cast<double>(rounds));
        s.ys.push_back(sol.makespan / first);
      }
      row.push_back(dls::common::Cell(100.0 * (1.0 - last / first), 1));
      table.add_row(std::move(row));
      series.push_back(std::move(s));
    }
    table.print(std::cout);
    std::cout << "(gain = % makespan reduction of R=16 vs R=1)\n\n";
    dls::common::plot(std::cout, series,
                      {.width = 64,
                       .height = 13,
                       .x_label = "installments R",
                       .y_label = "makespan / single-round makespan",
                       .title = "diminishing returns of multi-round"});
    std::cout << '\n';
  }

  // ---- Chosen geometric ratio θ.
  {
    std::cout << "--- optimiser internals (z = 0.4 case) ---\n";
    const dls::net::StarNetwork star(1.0, std::vector<double>(6, 1.0),
                                     std::vector<double>(6, 0.4));
    dls::common::Table table(
        {{"R"}, {"theta"}, {"root share"}, {"installments"}});
    for (const std::size_t rounds : {1u, 2u, 4u, 8u}) {
      const auto sol = dls::analysis::solve_multiround_star(star, rounds);
      table.add_row({static_cast<std::int64_t>(rounds),
                     dls::common::Cell(sol.theta, 3),
                     dls::common::Cell(sol.schedule.root_share, 3),
                     sol.schedule.sends.size()});
    }
    table.print(std::cout);
    std::cout << "\nθ > 1: rounds grow geometrically — tiny first chunks "
                 "get everyone computing,\nbulk arrives later (the UMR "
                 "pattern of [21]).\n";
  }
  return 0;
}
