// Experiment FIG2 — Figure 2 of the paper: the Gantt chart of an optimal
// execution on an (m+1)-processor boundary-origination chain.
//
// Reproduction target: the *shape* of Figure 2 — sequential bulk
// transfers marching down the chain (communication above each axis),
// computation (below each axis) starting as soon as a processor owns its
// load, and every compute bar ending at the same instant (Theorem 2.1).
// The closing table cross-checks the event-driven simulator against the
// closed forms of eqs. (2.1)-(2.2).
#include <iostream>

#include "common/table.hpp"
#include "common/tolerance.hpp"
#include "dlt/linear.hpp"
#include "net/networks.hpp"
#include "sim/gantt.hpp"
#include "sim/linear_execution.hpp"

int main() {
  std::cout << "=== FIG2: Gantt chart of the optimal schedule ===\n\n";

  // The paper's illustration uses a homogeneous chain; we render that
  // plus a heterogeneous one to show the equal-finish property is not an
  // artifact of symmetry.
  struct Case {
    const char* name;
    dls::net::LinearNetwork network;
  };
  const Case cases[] = {
      {"homogeneous chain, m+1 = 6 (w = 1, z = 0.2)",
       dls::net::LinearNetwork::uniform(6, 1.0, 0.2)},
      {"heterogeneous chain, m+1 = 5",
       dls::net::LinearNetwork({1.0, 0.8, 1.2, 0.6, 1.5},
                               {0.10, 0.15, 0.20, 0.30})},
  };

  for (const Case& c : cases) {
    const auto solution = dls::dlt::solve_linear_boundary(c.network);
    const auto result = dls::sim::execute_linear(
        c.network, dls::sim::ExecutionPlan::compliant(c.network, solution));

    dls::sim::GanttOptions options;
    options.width = 88;
    options.title = std::string("--- ") + c.name + " ---";
    render_gantt(std::cout, result.trace, options);

    dls::common::Table table({{"processor", dls::common::Align::kLeft},
                              {"T_i analytic (2.1/2.2)"},
                              {"T_i simulated"},
                              {"rel. error"}});
    const auto analytic = dls::dlt::finish_times(c.network, solution.alpha);
    double worst = 0.0;
    for (std::size_t i = 0; i < c.network.size(); ++i) {
      const double err = dls::common::relative_error(
          analytic[i], result.finish_time[i]);
      worst = std::max(worst, err);
      table.add_row({"P" + std::to_string(i),
                     dls::common::Cell(analytic[i], 6),
                     dls::common::Cell(result.finish_time[i], 6),
                     dls::common::Cell(err, 12)});
    }
    table.print(std::cout);
    std::cout << "max relative error: " << worst << "  ("
              << (worst <= 1e-9 ? "PASS" : "FAIL")
              << " <= 1e-9)\n\n";
  }
  return 0;
}
