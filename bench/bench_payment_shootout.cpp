// Experiment SHOOTOUT — why the bonus (4.9) is built the way it is.
// Three payment rules face the same manipulations on the same chains:
//
//   DLS-LBL      — the paper's verification-aware bonus;
//   paper-VCG    — marginal contribution computed from bids alone;
//   cost-plus    — metered cost plus a flat fee.
//
// Expected outcome: paper-VCG invites aggressive *underbidding* (the
// manipulation inflates the on-paper marginal contribution), cost-plus
// makes bids meaningless (so allocation efficiency collapses under
// arbitrary bidding), and only DLS-LBL keeps both truthful bids and an
// optimal schedule.
#include <iostream>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/alt_payments.hpp"
#include "core/dls_lbl.hpp"
#include "dlt/linear.hpp"
#include "net/networks.hpp"

int main() {
  std::cout << "=== SHOOTOUT: DLS-LBL vs paper-VCG vs cost-plus ===\n\n";
  const dls::core::MechanismConfig config;

  // ---- Best-response bids under each rule.
  {
    std::cout << "--- best response over a bid grid (everyone else "
                 "truthful) ---\n";
    dls::common::Rng rng(515);
    dls::common::OnlineStats lbl_mult, vcg_mult;
    constexpr int kInstances = 120;
    for (int rep = 0; rep < kInstances; ++rep) {
      const auto m = static_cast<std::size_t>(rng.uniform_int(2, 8));
      const auto net = dls::net::LinearNetwork::random(
          m + 1, rng, 0.5, 5.0, 0.05, 0.5);
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(m)));
      const double t = net.w(i);
      double best_lbl = 1.0, best_lbl_u = -1e300;
      double best_vcg = 1.0, best_vcg_u = -1e300;
      for (double f = 0.2; f <= 3.01; f += 0.1) {
        const double lbl =
            dls::core::utility_under_bid(net, i, t * f, t, config);
        if (lbl > best_lbl_u + 1e-12) {
          best_lbl_u = lbl;
          best_lbl = f;
        }
        const double vcg =
            dls::core::paper_vcg_utility_under_bid(net, i, t * f, t);
        if (vcg > best_vcg_u + 1e-12) {
          best_vcg_u = vcg;
          best_vcg = f;
        }
      }
      lbl_mult.add(best_lbl);
      vcg_mult.add(best_vcg);
    }
    dls::common::Table table({{"rule", dls::common::Align::kLeft},
                              {"mean best-response multiplier"},
                              {"min"},
                              {"max"},
                              {"verdict", dls::common::Align::kLeft}});
    table.add_row({"DLS-LBL", dls::common::Cell(lbl_mult.mean(), 3),
                   dls::common::Cell(lbl_mult.min(), 2),
                   dls::common::Cell(lbl_mult.max(), 2),
                   lbl_mult.max() <= 1.05 && lbl_mult.min() >= 0.95
                       ? "truthful (PASS)"
                       : "manipulable (FAIL)"});
    table.add_row({"paper-VCG", dls::common::Cell(vcg_mult.mean(), 3),
                   dls::common::Cell(vcg_mult.min(), 2),
                   dls::common::Cell(vcg_mult.max(), 2),
                   vcg_mult.mean() < 0.5
                       ? "underbids hard (as predicted)"
                       : "unexpected"});
    table.add_row({"cost-plus", "any", "0.20", "3.00",
                   "indifferent — bids carry no information"});
    table.print(std::cout);
    std::cout << '\n';
  }

  // ---- Efficiency consequences.
  {
    std::cout << "--- schedule efficiency under each rule's equilibrium "
                 "bidding ---\n";
    dls::common::Rng rng(616);
    dls::common::OnlineStats lbl_eff, vcg_eff, cp_eff;
    constexpr int kInstances = 150;
    for (int rep = 0; rep < kInstances; ++rep) {
      const auto m = static_cast<std::size_t>(rng.uniform_int(2, 8));
      const auto net = dls::net::LinearNetwork::random(
          m + 1, rng, 0.5, 5.0, 0.05, 0.5);
      const double optimal = dls::dlt::solve_linear_boundary(net).makespan;

      // DLS-LBL: truthful bids -> optimal schedule, executed truly.
      lbl_eff.add(1.0);

      // paper-VCG: everyone underbids to the grid floor; the schedule is
      // computed from fantasy rates but executed at TRUE rates.
      {
        std::vector<double> w(net.size());
        w[0] = net.w(0);
        for (std::size_t j = 1; j < net.size(); ++j) {
          w[j] = net.w(j) * 0.2;
        }
        const dls::net::LinearNetwork bids(
            std::move(w),
            {net.link_times().begin(), net.link_times().end()});
        const auto sol = dls::dlt::solve_linear_boundary(bids);
        vcg_eff.add(dls::dlt::makespan(net, sol.alpha) / optimal);
      }

      // cost-plus: bids are arbitrary noise (indifference), schedule
      // computed from them, executed at true rates.
      {
        std::vector<double> w(net.size());
        w[0] = net.w(0);
        for (std::size_t j = 1; j < net.size(); ++j) {
          w[j] = rng.log_uniform(0.5, 5.0);  // uninformative bid
        }
        const dls::net::LinearNetwork bids(
            std::move(w),
            {net.link_times().begin(), net.link_times().end()});
        const auto sol = dls::dlt::solve_linear_boundary(bids);
        cp_eff.add(dls::dlt::makespan(net, sol.alpha) / optimal);
      }
    }
    dls::common::Table table({{"rule", dls::common::Align::kLeft},
                              {"mean makespan / optimal"},
                              {"worst"}});
    table.add_row({"DLS-LBL (truthful)", dls::common::Cell(lbl_eff.mean(), 3),
                   dls::common::Cell(lbl_eff.max(), 3)});
    table.add_row({"paper-VCG (underbid)",
                   dls::common::Cell(vcg_eff.mean(), 3),
                   dls::common::Cell(vcg_eff.max(), 3)});
    table.add_row({"cost-plus (noise bids)",
                   dls::common::Cell(cp_eff.mean(), 3),
                   dls::common::Cell(cp_eff.max(), 3)});
    table.print(std::cout);
    std::cout << "\nOnly the verification-aware bonus keeps the reported "
                 "rates honest AND the\nschedule optimal — the paper's "
                 "design in one table.\n";
  }
  return 0;
}
