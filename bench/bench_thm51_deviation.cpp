// Experiment THM5.1 — Lemma 5.1/5.2 and Theorem 5.1: every deviation
// class is detected by the protocol, the deviant is fined more than it
// could ever gain, and honest processors never get fined.
//
// Reproduction targets: detection rate 1.0 for every finable class over
// randomized instances and deviant positions; deviant net utility below
// the honest counterfactual in 100% of runs; zero false fines on honest
// agents (Lemma 5.2).
#include <iostream>

#include "agents/agent.hpp"
#include "analysis/experiments.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "net/networks.hpp"
#include "protocol/runner.hpp"

namespace {

using dls::agents::Behavior;
using dls::agents::Population;
using dls::agents::StrategicAgent;

Population population_for(const dls::net::LinearNetwork& net,
                          std::size_t deviant, const Behavior& b) {
  std::vector<StrategicAgent> agents;
  for (std::size_t i = 1; i < net.size(); ++i) {
    agents.push_back(StrategicAgent{
        i, net.w(i), i == deviant ? b : Behavior::truthful()});
  }
  return Population(std::move(agents));
}

}  // namespace

int main() {
  std::cout << "=== THM5.1: deviation detection and economics ===\n\n";

  struct Row {
    Behavior behavior;
    int runs = 0;
    int detected = 0;
    int unprofitable = 0;
    dls::common::OnlineStats net_loss;  // honest minus deviant utility
  };
  std::vector<Row> rows = {
      {Behavior::contradictor()},     {Behavior::miscomputer()},
      {Behavior::load_shedder(0.25)}, {Behavior::load_shedder(0.75)},
      {Behavior::overcharger(0.5)},   {Behavior::false_accuser()},
  };

  dls::common::Rng rng(1337);
  int honest_fines = 0;
  constexpr int kInstances = 60;
  for (int rep = 0; rep < kInstances; ++rep) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(2, 8));
    const auto net = dls::net::LinearNetwork::random(
        m + 1, rng, dls::analysis::kWLo, dls::analysis::kWHi,
        dls::analysis::kZLo, dls::analysis::kZHi);
    dls::protocol::ProtocolOptions options;
    options.seed = rng.bits();
    options.mechanism.audit_probability = 1.0;
    const auto honest = dls::protocol::run_protocol(
        net, population_for(net, 0, Behavior::truthful()), options);
    for (std::size_t i = 1; i <= m; ++i) {
      if (honest.processors[i].fines > 0.0) ++honest_fines;
    }

    // Positions 1..m-1 only: the terminal processor has no successor to
    // miscompute a D for and is forced to retain all received load, so
    // those two deviations are impossible there by construction.
    const auto deviant = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(m) - 1));
    for (Row& row : rows) {
      const auto report = dls::protocol::run_protocol(
          net, population_for(net, deviant, row.behavior), options);
      ++row.runs;
      bool caught = false;
      for (const auto& inc : report.incidents) {
        const std::size_t loser =
            inc.substantiated ? inc.accused : inc.reporter;
        if (loser == deviant && inc.fine > 0.0) caught = true;
      }
      if (caught) ++row.detected;
      const double loss = honest.processors[deviant].utility -
                          report.processors[deviant].utility;
      if (loss > -1e-9) ++row.unprofitable;
      row.net_loss.add(loss);
    }
  }

  dls::common::Table table({{"deviation", dls::common::Align::kLeft},
                            {"runs"},
                            {"detected & fined"},
                            {"unprofitable"},
                            {"mean net loss"},
                            {"min net loss"}});
  for (const Row& row : rows) {
    table.add_row({row.behavior.name +
                       (row.behavior.shed_fraction > 0
                            ? " (" +
                                  dls::common::format_double(
                                      row.behavior.shed_fraction, 2) +
                                  ")"
                            : ""),
                   row.runs, row.detected, row.unprofitable,
                   dls::common::Cell(row.net_loss.mean(), 3),
                   dls::common::Cell(row.net_loss.min(), 3)});
  }
  table.print(std::cout);
  std::cout << "\nfines charged to honest processors across all runs: "
            << honest_fines << " ("
            << (honest_fines == 0 ? "PASS" : "FAIL")
            << " — Lemma 5.2 promises none)\n";
  std::cout << "every deviation row must show detected = runs and "
               "unprofitable = runs (Theorem 5.1).\n";
  return 0;
}
