// Experiment THM5.4 — Lemma 5.4 / Theorem 5.4 (voluntary participation):
// the distribution of truthful utilities over randomized instances.
//
// Reproduction targets: the minimum truthful utility is >= 0 on every
// instance (in this construction strictly positive: U_j = w_{j-1} −
// w̄_{j-1} and the reduction always improves on the bare predecessor);
// profit decays with position in the chain (deeper processors relieve a
// smaller marginal burden); and the mechanism's budget (total payments)
// scales with the chain, not with any one agent's leverage.
#include <iostream>

#include "analysis/experiments.hpp"
#include "analysis/sweep.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/dls_lbl.hpp"
#include "net/networks.hpp"

int main() {
  std::cout << "=== THM5.4: voluntary participation ===\n\n";
  const dls::core::MechanismConfig config;

  // ---- Distribution of truthful utilities across random instances.
  {
    dls::common::Rng rng(90210);
    dls::common::OnlineStats min_u, mean_u, payments;
    std::vector<double> minima;
    int negative = 0;
    constexpr int kInstances = 500;
    for (int rep = 0; rep < kInstances; ++rep) {
      const auto m = static_cast<std::size_t>(rng.uniform_int(1, 30));
      const auto net = dls::net::LinearNetwork::random(
          m + 1, rng, dls::analysis::kWLo, dls::analysis::kWHi,
          dls::analysis::kZLo, dls::analysis::kZHi);
      const auto sample = dls::analysis::truthful_participation(net, config);
      min_u.add(sample.min_utility);
      mean_u.add(sample.mean_utility);
      payments.add(sample.total_payment);
      minima.push_back(sample.min_utility);
      if (sample.min_utility < 0.0) ++negative;
    }
    std::cout << kInstances << " random instances (m in [1,30]):\n";
    dls::common::Table table({{"statistic", dls::common::Align::kLeft},
                              {"min"},
                              {"p10"},
                              {"median"},
                              {"mean"},
                              {"max"}});
    table.add_row({"per-instance min utility",
                   dls::common::Cell(min_u.min(), 6),
                   dls::common::Cell(dls::common::percentile(minima, 10), 6),
                   dls::common::Cell(dls::common::percentile(minima, 50), 6),
                   dls::common::Cell(min_u.mean(), 6),
                   dls::common::Cell(min_u.max(), 6)});
    table.add_row({"per-instance mean utility",
                   dls::common::Cell(mean_u.min(), 6), "", "",
                   dls::common::Cell(mean_u.mean(), 6),
                   dls::common::Cell(mean_u.max(), 6)});
    table.print(std::cout);
    std::cout << "instances with a negative truthful utility: " << negative
              << " (" << (negative == 0 ? "PASS" : "FAIL")
              << " — Theorem 5.4 promises none)\n\n";
  }

  // ---- Profit by chain position (homogeneous chain shows the shape).
  {
    std::cout << "--- utility by position, homogeneous chain "
                 "(w = 1, z = 0.2, m+1 = 10) ---\n";
    const auto net = dls::net::LinearNetwork::uniform(10, 1.0, 0.2);
    std::vector<double> actual(net.processing_times().begin(),
                               net.processing_times().end());
    const auto result = dls::core::assess_compliant(net, actual, config);
    dls::common::Table table({{"processor", dls::common::Align::kLeft},
                              {"alpha"},
                              {"bonus B = w_{j-1} - w̄_{j-1}"},
                              {"utility"}});
    for (std::size_t j = 1; j < net.size(); ++j) {
      const auto& a = result.processors[j];
      table.add_row({"P" + std::to_string(j),
                     dls::common::Cell(a.alpha, 4),
                     dls::common::Cell(a.money.bonus, 6),
                     dls::common::Cell(a.money.utility, 6)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  // ---- Mechanism budget vs chain length.
  {
    std::cout << "--- mechanism budget (w = 1, z = 0.2) ---\n";
    dls::common::Table table({{"m+1"},
                              {"makespan"},
                              {"total payments"},
                              {"payments / compute cost"}});
    for (const std::size_t n : dls::analysis::int_ladder(2, 64)) {
      const auto net = dls::net::LinearNetwork::uniform(n, 1.0, 0.2);
      const auto sample = dls::analysis::truthful_participation(net, config);
      // The whole unit load at w = 1 costs exactly 1 to compute.
      table.add_row({n, dls::common::Cell(sample.makespan, 4),
                     dls::common::Cell(sample.total_payment, 4),
                     dls::common::Cell(sample.total_payment / 1.0, 4)});
    }
    table.print(std::cout);
    std::cout << "\nThe bonus column: payments overshoot raw compute cost — "
                 "the price of truthfulness\n(the classic VCG-style "
                 "budget overhead, here bounded by Σ w_{j-1}).\n";
  }
  return 0;
}
