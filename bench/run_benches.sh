#!/usr/bin/env bash
# Runs the perf benchmark suite — bench_perf_micro plus the serve-layer
# bench_serve_throughput — and writes ONE merged google-benchmark JSON
# report, the format consumed by bench/check_perf_regression.py.
#
# Usage:
#   bench/run_benches.sh [build-dir] [out.json] [extra benchmark args...]
#
# Examples:
#   bench/run_benches.sh                      # build -> bench/BENCH_perf.json
#   bench/run_benches.sh build /tmp/now.json \
#     --benchmark_filter='^bm_solver/(16|256|4096)$|^bm_event_engine/1024$'
#
# Extra benchmark args (e.g. --benchmark_filter) are passed to BOTH
# binaries; a binary whose benchmarks are all filtered out still emits a
# valid empty report, so the merge stays well-formed.
#
# Refresh the committed baseline after an intentional perf change with:
#   bench/run_benches.sh build bench/BENCH_perf.json
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_json="${2:-$repo_root/bench/BENCH_perf.json}"
shift $(( $# > 2 ? 2 : $# ))

bench_bins=(
  "$build_dir/bench/bench_perf_micro"
  "$build_dir/bench/bench_serve_throughput"
  "$build_dir/bench/bench_serve_sharded"
  "$build_dir/bench/bench_multiload"
)
for bench_bin in "${bench_bins[@]}"; do
  if [[ ! -x "$bench_bin" ]]; then
    echo "error: $bench_bin not built (cmake --build $build_dir --target $(basename "$bench_bin"))" >&2
    exit 1
  fi
done

# Optional trace archiving: set TRACE_OUT=/path/trace.json to collect a
# Chrome trace of the whole bench run alongside the JSON report (the
# bench binaries' custom main handles --trace-out). Only the first
# binary traces; one archive per run is enough.
trace_args=()
if [[ -n "${TRACE_OUT:-}" ]]; then
  mkdir -p "$(dirname "$TRACE_OUT")"
  trace_args+=("--trace-out=$TRACE_OUT")
fi

tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT

part_jsons=()
for i in "${!bench_bins[@]}"; do
  part="$tmp_dir/part$i.json"
  part_jsons+=("$part")
  extra=()
  if [[ "$i" == 0 ]]; then
    extra=(${trace_args[@]+"${trace_args[@]}"})
  fi
  "${bench_bins[$i]}" \
    --benchmark_out="$part" \
    --benchmark_out_format=json \
    ${extra[@]+"${extra[@]}"} \
    "$@"
done

# Merge: keep the first report's context, concatenate the "benchmarks"
# arrays in run order.
python3 - "$out_json" "${part_jsons[@]}" <<'PY'
import json
import sys

out_path, *parts = sys.argv[1:]
merged = None
for part in parts:
    with open(part, encoding="utf-8") as handle:
        report = json.load(handle)
    if merged is None:
        merged = report
    else:
        merged.setdefault("benchmarks", []).extend(
            report.get("benchmarks", []))
with open(out_path, "w", encoding="utf-8") as handle:
    json.dump(merged, handle, indent=2)
    handle.write("\n")
PY

echo "merged report written to $out_json"
if [[ -n "${TRACE_OUT:-}" ]]; then
  echo "trace archived at $TRACE_OUT"
fi
