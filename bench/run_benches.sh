#!/usr/bin/env bash
# Runs the perf microbenchmark suite and writes a google-benchmark JSON
# report, the format consumed by bench/check_perf_regression.py.
#
# Usage:
#   bench/run_benches.sh [build-dir] [out.json] [extra benchmark args...]
#
# Examples:
#   bench/run_benches.sh                      # build -> bench/BENCH_perf.json
#   bench/run_benches.sh build /tmp/now.json \
#     --benchmark_filter='^bm_solver/(16|256|4096)$|^bm_event_engine/1024$'
#
# Refresh the committed baseline after an intentional perf change with:
#   bench/run_benches.sh build bench/BENCH_perf.json
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_json="${2:-$repo_root/bench/BENCH_perf.json}"
shift $(( $# > 2 ? 2 : $# ))

bench_bin="$build_dir/bench/bench_perf_micro"
if [[ ! -x "$bench_bin" ]]; then
  echo "error: $bench_bin not built (cmake --build $build_dir --target bench_perf_micro)" >&2
  exit 1
fi

# Optional trace archiving: set TRACE_OUT=/path/trace.json to collect a
# Chrome trace of the whole bench run alongside the JSON report (the
# bench binary's custom main handles --trace-out).
trace_args=()
if [[ -n "${TRACE_OUT:-}" ]]; then
  mkdir -p "$(dirname "$TRACE_OUT")"
  trace_args+=("--trace-out=$TRACE_OUT")
fi

"$bench_bin" \
  --benchmark_out="$out_json" \
  --benchmark_out_format=json \
  ${trace_args[@]+"${trace_args[@]}"} \
  "$@"

if [[ -n "${TRACE_OUT:-}" ]]; then
  echo "trace archived at $TRACE_OUT"
fi
