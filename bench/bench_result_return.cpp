// Experiment RETURN — assumption (iii) of the paper: "the time taken for
// returning the result of the load processing back to the root is
// small". This bench quantifies exactly when that assumption is
// justified: the relative makespan inflation caused by relaying results
// back through the chain, as a function of the result-size factor δ and
// the chain depth.
//
// Expected shape: overhead grows ~linearly in δ (the bottleneck is l_1
// carrying δ·(1−α_0) of traffic), is modest for δ of a few percent —
// vindicating the assumption for search/filter workloads — and becomes
// material once δ approaches the input size (matrix-style workloads).
#include <iostream>

#include "analysis/sweep.hpp"
#include "common/ascii_plot.hpp"
#include "common/table.hpp"
#include "dlt/linear.hpp"
#include "net/networks.hpp"
#include "sim/linear_returns.hpp"

int main() {
  std::cout << "=== RETURN: how costly is ignoring result return? ===\n\n";

  // ---- Overhead vs delta across chain depths.
  {
    std::cout << "--- homogeneous chains, w = 1, z = 0.2 ---\n";
    dls::common::Table table({{"m+1"},
                              {"T (no return)"},
                              {"delta=0.01"},
                              {"delta=0.05"},
                              {"delta=0.2"},
                              {"delta=1.0"},
                              {"inflation at delta=1"}});
    for (const std::size_t n : {2u, 4u, 8u, 16u, 32u}) {
      const auto net = dls::net::LinearNetwork::uniform(n, 1.0, 0.2);
      const auto sol = dls::dlt::solve_linear_boundary(net);
      const auto plan = dls::sim::ExecutionPlan::compliant(net, sol);
      std::vector<dls::common::Cell> row = {
          n, dls::common::Cell(sol.makespan, 4)};
      double worst = 0.0;
      for (const double delta : {0.01, 0.05, 0.2, 1.0}) {
        const auto result =
            dls::sim::execute_linear_with_returns(net, plan, delta);
        row.push_back(dls::common::Cell(result.collection_time, 4));
        worst = result.collection_time / sol.makespan;
      }
      row.push_back(dls::common::Cell(worst, 3));
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  // ---- Overhead curve vs delta (fixed chain).
  {
    const auto net = dls::net::LinearNetwork::uniform(8, 1.0, 0.2);
    const auto sol = dls::dlt::solve_linear_boundary(net);
    const auto plan = dls::sim::ExecutionPlan::compliant(net, sol);
    dls::common::Series series{"overhead %", {}, {}, '*'};
    for (const double delta : dls::analysis::linspace(0.0, 1.0, 26)) {
      const auto result =
          dls::sim::execute_linear_with_returns(net, plan, delta);
      series.xs.push_back(delta);
      series.ys.push_back(100.0 * result.return_overhead() / sol.makespan);
    }
    dls::common::plot(std::cout, series,
                      {.width = 64,
                       .height = 12,
                       .x_label = "result size factor delta",
                       .y_label = "makespan inflation %",
                       .title = "return overhead (m+1 = 8, z/w = 0.2)"});
    std::cout << "\nAt delta <= 0.05 the inflation stays in the low "
                 "single digits — assumption (iii)\nis sound for "
                 "search/filter-style workloads; at delta ~ 1 the return "
                 "phase rivals\nthe computation itself.\n";
  }
  return 0;
}
