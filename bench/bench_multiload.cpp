// Experiment MULTILOAD — concurrent divisible loads on one chain
// (google-benchmark): cost of a pipelined multi-load solve as the load
// count grows, per-load payment assessment off one shared unit
// assessment, and the headline model quantity — pipelined dispatch
// makespan against serialized strict rounds on the same loads.
//
// bm_multiload_vs_serialized exports the deterministic model-level
// speedup as ``floor_speedup_vs_serialized``; check_perf_regression.py
// gates floor_* counters as minima, so losing the pipelining win is a
// perf-gate failure, not a silent note in a report.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "multiload/payments.hpp"
#include "multiload/solver.hpp"
#include "net/networks.hpp"

namespace {

constexpr std::size_t kChain = 8;

dls::net::LinearNetwork bench_network() {
  dls::common::Rng rng(0x4d4c);
  return dls::net::LinearNetwork::random(kChain, rng, 0.5, 5.0, 0.05, 0.5);
}

std::vector<dls::multiload::LoadSpec> bench_loads(std::size_t count,
                                                  double spread) {
  dls::common::Rng rng(0x4d4c + count);
  std::vector<dls::multiload::LoadSpec> loads(count);
  double release = 0.0;
  for (std::size_t k = 0; k < count; ++k) {
    loads[k].id = k + 1;
    loads[k].size = rng.log_uniform(0.5, 2.0);
    if (spread > 0.0 && k > 0) release += rng.exponential(1.0 / spread);
    loads[k].release = release;
  }
  return loads;
}

dls::multiload::MultiLoadConfig bench_config() {
  dls::multiload::MultiLoadConfig config;
  config.policy = dls::multiload::DispatchPolicy::kFifo;
  config.installments_per_load = 2;
  config.ingress_z = 0.1;
  return config;
}

// Pipelined solve cost vs load count (the per-request work the serve
// layer pays for a kMultiScheduleRequest).
void bm_multiload_solve(benchmark::State& state) {
  const auto network = bench_network();
  const auto loads =
      bench_loads(static_cast<std::size_t>(state.range(0)), 0.5);
  const auto config = bench_config();
  dls::multiload::MultiLoadSolver solver(network);
  for (auto _ : state) {
    const auto schedule = solver.solve(loads, config);
    benchmark::DoNotOptimize(schedule.makespan);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(loads.size()));
}
BENCHMARK(bm_multiload_solve)->Arg(2)->Arg(8)->Arg(32)->Unit(
    benchmark::kMicrosecond);

// Per-load pricing: ONE unit assessment scaled across every load.
void bm_multiload_payments(benchmark::State& state) {
  const auto network = bench_network();
  const auto loads =
      bench_loads(static_cast<std::size_t>(state.range(0)), 0.0);
  const dls::core::MechanismConfig mechanism;
  for (auto _ : state) {
    const auto assessment = dls::multiload::assess_loads(
        network, network.processing_times(), loads, mechanism);
    benchmark::DoNotOptimize(assessment.total_payment);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(loads.size()));
}
BENCHMARK(bm_multiload_payments)->Arg(2)->Arg(32)->Unit(
    benchmark::kMicrosecond);

// The headline comparison: pipelined multi-load dispatch vs serialized
// strict rounds of single-load solves, as MODEL time (makespan), not
// wall time — deterministic, so the gated floor never flaps. A batch
// of equal-release loads through the staged ingress is exactly the
// regime where pipelining pays: load k+1 stages while load k streams
// down the chain.
void bm_multiload_vs_serialized(benchmark::State& state) {
  const auto network = bench_network();
  const auto loads = bench_loads(4, 0.0);  // batch arrival
  const auto config = bench_config();
  dls::multiload::MultiLoadSolver solver(network);
  double speedup = 0.0;
  double makespan = 0.0;
  double serialized = 0.0;
  for (auto _ : state) {
    const auto schedule = solver.solve(loads, config);
    makespan = schedule.makespan;
    serialized = schedule.serialized_makespan;
    speedup = serialized / makespan;
    benchmark::DoNotOptimize(speedup);
  }
  state.counters["model_makespan"] = makespan;
  state.counters["model_serialized_makespan"] = serialized;
  state.counters["model_throughput_loads_per_time"] =
      static_cast<double>(loads.size()) / makespan;
  state.counters["floor_speedup_vs_serialized"] = speedup;
}
BENCHMARK(bm_multiload_vs_serialized)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
