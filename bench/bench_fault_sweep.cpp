// Experiment FAULT — chaos sweep over crash rates. Every non-root
// processor independently crashes with probability p at a random work
// fraction; the fault-tolerant runner detects each crash by heartbeat
// timeout, re-solves Algorithm 1 over the surviving prefix, and settles
// the victim with its E_j-style recompense. The sweep reports what that
// costs:
//   * makespan degradation vs the fault-free prediction (detection
//     latency + the serialised recovery pass),
//   * detection latency of the probe/backoff machinery,
//   * recovery rate (did survivors absorb the full unit load),
//   * ledger conservation under partially-settled rounds (must be 0),
//   * the mean crash settlement paid to victims.
#include <iostream>

#include "analysis/faultsweep.hpp"
#include "common/table.hpp"

int main() {
  std::cout << "=== FAULT: crash-rate chaos sweep ===\n\n";

  dls::analysis::FaultSweepConfig config;
  config.processors = 8;
  config.trials = 40;
  config.crash_rates = {0.0, 0.05, 0.1, 0.2, 0.4};

  const auto rows = dls::analysis::run_fault_sweep(config);

  dls::common::Table table({{"crash rate"},
                            {"crashes/run"},
                            {"makespan x (mean)"},
                            {"makespan x (max)"},
                            {"detect latency"},
                            {"recovered"},
                            {"ledger residual"},
                            {"settlement E_j"}});
  for (const auto& row : rows) {
    table.add_row({dls::common::Cell(row.crash_rate, 2),
                   dls::common::Cell(row.mean_crashes, 2),
                   dls::common::Cell(row.mean_makespan_ratio, 3),
                   dls::common::Cell(row.max_makespan_ratio, 3),
                   dls::common::Cell(row.mean_detection_latency, 3),
                   dls::common::Cell(row.recovery_rate, 2),
                   dls::common::Cell(row.max_conservation_residual, 12),
                   dls::common::Cell(row.mean_settlement, 4)});
  }
  table.print(std::cout);

  std::cout
      << "\nEvery round conserves money to machine precision even when a\n"
         "crash splits settlement between the victim's recompense and the\n"
         "survivors' recovery pay; makespan degrades smoothly with the\n"
         "crash rate (detection latency plus the serialised re-solve), and\n"
         "survivors cover the full load whenever the root itself survives.\n";
  return 0;
}
