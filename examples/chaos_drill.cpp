// Chaos drill: the robust client surviving a hostile wire. A
// SchedulerService is reached only through a ChaosTransport that drops,
// truncates, corrupts, delays and duplicates frames; schedule_robust
// retries with decorrelated-jitter backoff behind a circuit breaker and
// a reconnect hook, and every answer that lands is checked bit-for-bit
// against a fault-free solve. The drill then pushes the fault rate to
// the point where budgets exhaust, showing the typed kBudgetExhausted
// report instead of a hang.
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <vector>

#include "dlt/linear.hpp"
#include "net/networks.hpp"
#include "serve/chaos.hpp"
#include "serve/client.hpp"
#include "serve/service.hpp"

namespace {

/// One drill pass: `requests` robust round trips through `chaos`,
/// verifying every kOk answer against the direct solver. Returns true
/// when every landed answer was bit-identical.
bool drill(dls::serve::SchedulerService& service, const char* label,
           const dls::serve::ChaosConfig& chaos,
           const dls::serve::RetryPolicy& policy, int requests) {
  const std::vector<double> w = {1.0, 1.2, 0.9, 1.1};
  const std::vector<double> z = {0.15, 0.1, 0.2};
  const dls::net::LinearNetwork network(w, z);
  dls::dlt::LinearSolution truth;
  dls::dlt::solve_linear_boundary_into(network, truth, /*want_steps=*/false);

  std::uint64_t connection = 0;
  const auto connect = [&]() -> std::unique_ptr<dls::serve::Transport> {
    ++connection;
    return std::make_unique<dls::serve::ChaosTransport>(
        service.connect(), chaos, 0xd121 + connection);
  };

  dls::serve::CircuitBreaker breaker(dls::serve::BreakerConfig{
      /*failure_threshold=*/3,
      /*open_cooldown_s=*/0.005,
      /*half_open_probes=*/1,
  });
  dls::serve::SchedulerClient client(connect());
  dls::serve::RobustOptions options;
  options.policy = policy;
  options.breaker = &breaker;
  options.reconnect = connect;
  options.seed = 42;

  int landed = 0, refused = 0, exhausted = 0, divergent = 0;
  std::uint64_t attempts = 0, wire_errors = 0, rejections = 0;
  for (int i = 0; i < requests; ++i) {
    const dls::serve::RobustResult result =
        client.schedule_robust(w, z, {}, options);
    attempts += result.stats.attempts;
    wire_errors += result.stats.wire_errors;
    rejections += result.stats.breaker_rejections;
    if (result.outcome == dls::serve::RobustOutcome::kBudgetExhausted) {
      ++exhausted;
    } else if (result.response.status != dls::serve::ScheduleStatus::kOk) {
      ++refused;
    } else {
      ++landed;
      if (result.response.alpha != truth.alpha ||
          result.response.makespan != truth.makespan) {
        ++divergent;
      }
    }
  }
  client.close();

  std::printf(
      "%-18s landed=%-3d refused=%-2d exhausted=%-3d divergent=%d\n"
      "%-18s attempts=%" PRIu64 " wire_errors=%" PRIu64
      " breaker_rejections=%" PRIu64 " reconnects=%" PRIu64 "\n",
      label, landed, refused, exhausted, divergent, "", attempts,
      wire_errors, rejections, connection - 1);
  return divergent == 0;
}

}  // namespace

int main() {
  dls::serve::ServiceConfig config;
  config.queue_capacity = 8;
  config.cache_capacity = 16;
  dls::serve::SchedulerService service(config);

  std::printf("=== chaos_drill: robust client vs a hostile wire ===\n\n");

  dls::serve::RetryPolicy policy;
  policy.base_delay_s = 0.0005;
  policy.max_delay_s = 0.01;
  policy.max_attempts = 16;
  policy.attempt_deadline_s = 0.25;

  // A storm of every fault kind at once: frames vanish, tear, flip bits,
  // stall and double up — yet every answer that lands is exact.
  dls::serve::ChaosConfig storm;
  storm.partial_write = 0.2;
  storm.truncate = 0.1;
  storm.corrupt = 0.15;
  storm.delay = 0.15;
  storm.disconnect = 0.15;
  storm.duplicate = 0.2;
  storm.read_corrupt = 0.05;
  const bool storm_exact = drill(service, "fault storm:", storm, policy, 64);

  // Crank the loss so high that some retry budgets run out: the client
  // reports kBudgetExhausted — a typed outcome, never a hang.
  dls::serve::ChaosConfig brutal;
  brutal.disconnect = 0.85;
  dls::serve::RetryPolicy tight = policy;
  tight.max_attempts = 3;
  const bool brutal_exact = drill(service, "\nbudget squeeze:", brutal,
                                  tight, 32);

  const dls::serve::ServiceStats stats = service.stats();
  std::printf(
      "\n--- service counters ---\n"
      "received=%" PRIu64 " ok=%" PRIu64 " shed=%" PRIu64
      " degraded=%" PRIu64 " poison_frames=%" PRIu64
      " quarantined=%" PRIu64 "\n",
      stats.received, stats.ok, stats.shed, stats.degraded,
      stats.poison_frames, stats.quarantined);

  const bool exact = storm_exact && brutal_exact;
  std::printf("every landed answer bit-identical: %s\n",
              exact ? "yes" : "NO (bug)");
  service.stop();
  return exact ? 0 : 1;
}
