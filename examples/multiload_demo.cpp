// Multi-load scheduling walkthrough: three divisible loads pipelined
// onto one chain.
//
// The demo solves a three-load batch directly with MultiLoadSolver,
// renders one Gantt lane per load, prices every load with the per-load
// DLS-LBL scaling, then submits the same batch to a SchedulerService
// over the framed transport and verifies the served answer is
// bit-identical to the direct solve — schedule and payments both.
// It closes with a small cell of the analysis scenario grid showing the
// pipelined-vs-serialized speedup across arrival processes.
#include <cinttypes>
#include <cstdio>
#include <iostream>

#include "analysis/multiload_grid.hpp"
#include "multiload/payments.hpp"
#include "multiload/solver.hpp"
#include "net/networks.hpp"
#include "serve/client.hpp"
#include "serve/service.hpp"
#include "sim/multiload_execution.hpp"

int main() {
  namespace ml = dls::multiload;
  const dls::net::LinearNetwork network({1.0, 1.2, 0.9, 1.1},
                                        {0.15, 0.1, 0.2});
  const std::vector<ml::LoadSpec> loads = {
      {1, 1.0, 0.0, 0.0},   // released at t=0
      {2, 2.0, 0.5, 0.0},   // twice the traffic, released at t=0.5
      {3, 0.5, 1.0, 6.0},   // small load with a deadline
  };
  ml::MultiLoadConfig config;
  config.policy = ml::DispatchPolicy::kFifo;
  config.installments_per_load = 2;
  config.ingress_z = 0.1;  // one-port staging link into the root

  std::printf("=== multiload_demo: %zu loads on a %zu-processor chain ===\n\n",
              loads.size(), network.size());

  // ---- Direct solve: the reference every served answer must match.
  ml::MultiLoadSolver solver(network);
  const ml::MultiLoadSchedule schedule = solver.solve(loads, config);
  for (const ml::LoadOutcome& outcome : schedule.loads) {
    std::printf(
        "load %" PRIu64 ": size=%.2f release=%.2f start=%.4f "
        "completion=%.4f deadline_met=%d\n",
        outcome.spec.id, outcome.spec.size, outcome.spec.release,
        outcome.start, outcome.completion, outcome.deadline_met ? 1 : 0);
  }
  std::printf("\npipelined makespan:  %.6f\n", schedule.makespan);
  std::printf("serialized rounds:   %.6f\n", schedule.serialized_makespan);
  std::printf("speedup:             %.3fx\n\n",
              schedule.serialized_makespan / schedule.makespan);

  // ---- One Gantt lane per load (the Figure 2 renderer, per lane).
  dls::sim::render_multiload_gantt(std::cout, network, schedule);
  std::cout << '\n';

  // ---- Per-load payments: one unit assessment prices every load.
  const dls::core::MechanismConfig mechanism;
  const ml::MultiLoadAssessment assessment = ml::assess_loads(
      network, network.processing_times(), loads, mechanism);
  for (const ml::LoadPayments& paid : assessment.loads) {
    std::printf("load %" PRIu64 ": total_payment=%.4f mechanism_cost=%.4f\n",
                paid.load_id, paid.total_payment, paid.mechanism_cost);
  }
  std::printf("round total: payment=%.4f cost=%.4f\n\n",
              assessment.total_payment, assessment.mechanism_cost);

  // ---- The same batch through the service, answers compared
  // bit-for-bit against the direct solve above.
  dls::serve::SchedulerService service{dls::serve::ServiceConfig{}};
  dls::serve::SchedulerClient client(service.connect());
  dls::serve::MultiScheduleRequest request;
  const auto w = network.processing_times();
  const auto z = network.link_times();
  request.w.assign(w.begin(), w.end());
  request.z.assign(z.begin(), z.end());
  for (const ml::LoadSpec& load : loads) {
    request.loads.push_back(dls::serve::MultiLoadItem{
        load.id, load.size, load.release, load.deadline});
  }
  request.policy = static_cast<std::uint8_t>(config.policy);
  request.installments =
      static_cast<std::uint32_t>(config.installments_per_load);
  request.ingress_z = config.ingress_z;
  request.want_payments = true;
  const dls::serve::MultiScheduleResponse served =
      client.schedule_multi(request);

  bool identical =
      served.status == dls::serve::ScheduleStatus::kOk &&
      served.makespan == schedule.makespan &&
      served.serialized_makespan == schedule.serialized_makespan &&
      served.total_payment == assessment.total_payment &&
      served.loads.size() == schedule.loads.size();
  for (std::size_t k = 0; identical && k < served.loads.size(); ++k) {
    identical = served.loads[k].load_id == schedule.loads[k].spec.id &&
                served.loads[k].start == schedule.loads[k].start &&
                served.loads[k].completion == schedule.loads[k].completion &&
                served.loads[k].deadline_met == schedule.loads[k].deadline_met &&
                served.loads[k].total_payment ==
                    assessment.loads[k].total_payment;
    }
  std::printf("served answer vs direct solve, bit-identical: %s\n\n",
              identical ? "yes" : "NO");
  service.stop();

  // ---- A small scenario-grid cell: speedup across arrival processes.
  dls::analysis::MultiLoadGridConfig grid;
  grid.chain_lengths = {4};
  grid.load_counts = {4};
  grid.mean_interarrivals = {0.0, 0.5, 2.0};
  grid.trials = 4;
  dls::analysis::print_multiload_grid(
      std::cout, dls::analysis::run_multiload_grid(grid));
  return identical ? 0 : 1;
}
