// Compares the three network shapes covered by this library — linear
// chain (this paper), bus and star (the authors' companion mechanisms)
// — on the same pool of processors, including the interior-origination
// chain from the paper's future-work list.
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "dlt/interior.hpp"
#include "dlt/linear.hpp"
#include "dlt/star.hpp"
#include "net/networks.hpp"

int main() {
  using dls::common::Align;
  using dls::common::Cell;
  using dls::common::Table;

  dls::common::Rng rng(2026);
  const std::size_t m = 8;  // strategic processors
  std::vector<double> worker_w(m);
  for (auto& w : worker_w) w = rng.log_uniform(0.6, 2.5);
  const double root_w = 1.0;
  const double channel = 0.15;  // unit communication time everywhere

  // Chain: root at the boundary, workers strung out behind it.
  std::vector<double> chain_w = {root_w};
  chain_w.insert(chain_w.end(), worker_w.begin(), worker_w.end());
  const dls::net::LinearNetwork chain(chain_w,
                                      std::vector<double>(m, channel));
  // Interior chain: same processors, root in the middle.
  const dls::net::InteriorLinearNetwork interior(
      chain_w, std::vector<double>(m, channel), m / 2);
  // Bus and star: same workers hanging off the root directly.
  const dls::net::BusNetwork bus(root_w, worker_w, channel);
  const dls::net::StarNetwork star(root_w, worker_w,
                                   std::vector<double>(m, channel));

  const double t_chain = dls::dlt::solve_linear_boundary(chain).makespan;
  const double t_interior = dls::dlt::solve_linear_interior(interior).makespan;
  const double t_bus = dls::dlt::solve_bus(bus).makespan;
  const double t_star = dls::dlt::solve_star(star).makespan;
  const double t_solo = root_w;  // the root alone

  Table table({{"topology", Align::kLeft},
               {"makespan", Align::kRight},
               {"speedup vs root alone", Align::kRight}});
  auto row = [&](const char* name, double t) {
    table.add_row({name, Cell(t, 4), Cell(t_solo / t, 2)});
  };
  row("root alone", t_solo);
  row("linear chain (boundary root)", t_chain);
  row("linear chain (interior root)", t_interior);
  row("bus (shared channel)", t_bus);
  row("star (dedicated links)", t_star);
  table.print(std::cout);

  std::cout << "\nWith identical processors and channel speed, moving the "
               "root to the chain's\ninterior shortens the longest relay "
               "path, and the bus/star shapes avoid\nrelaying entirely — "
               "the classic DLT topology ordering.\n";
  return 0;
}
