// A small command-line scheduler: feed it a network description, get the
// optimal divisible-load schedule, the Gantt chart and the DLS-LBL
// payments.
//
// Usage:
//   scheduler_cli --w 1.0,0.8,1.2,0.6 --z 0.1,0.15,0.2 [options]
//
//   --w LIST        comma-separated unit processing times, P0 first
//   --z LIST        comma-separated unit link times (one fewer than --w)
//   --startup LIST  per-processor compute startups (affine model)
//   --gantt         render the execution Gantt chart
//   --csv           emit the schedule as CSV instead of a table
//   --no-payments   skip the mechanism payment report
//   --trace-out F   collect an execution trace and write Chrome trace
//                   JSON to F (open in chrome://tracing or Perfetto)
//   --trace-logical-clock
//                   timestamp trace events with a deterministic logical
//                   tick counter instead of the wall clock
//   --trace-summary print a human-readable span/metric summary
//
// Exit status: 0 on success, 2 on bad usage, 1 on infeasible input.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/table.hpp"
#include "core/dls_lbl.hpp"
#include "dlt/affine.hpp"
#include "dlt/linear.hpp"
#include "net/networks.hpp"
#include "obs/obs.hpp"
#include "obs/trace_export.hpp"
#include "sim/gantt.hpp"
#include "sim/linear_execution.hpp"

namespace {

std::vector<double> parse_list(const std::string& text) {
  std::vector<double> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(std::stod(item));
  }
  return out;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --w W0,W1,... --z Z1,Z2,... [--startup S0,S1,...]"
               " [--gantt] [--csv] [--no-payments] [--trace-out FILE]"
               " [--trace-logical-clock] [--trace-summary]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<double> w, z, startup;
  bool want_gantt = false, want_csv = false, want_payments = true;
  bool logical_clock = false, trace_summary = false;
  std::string trace_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    try {
      if (arg.rfind("--trace-out=", 0) == 0) {
        trace_out = arg.substr(sizeof("--trace-out=") - 1);
      } else if (arg == "--trace-out") {
        const char* v = next();
        if (!v) return usage(argv[0]);
        trace_out = v;
      } else if (arg == "--trace-logical-clock") {
        logical_clock = true;
      } else if (arg == "--trace-summary") {
        trace_summary = true;
      } else if (arg == "--w") {
        const char* v = next();
        if (!v) return usage(argv[0]);
        w = parse_list(v);
      } else if (arg == "--z") {
        const char* v = next();
        if (!v) return usage(argv[0]);
        z = parse_list(v);
      } else if (arg == "--startup") {
        const char* v = next();
        if (!v) return usage(argv[0]);
        startup = parse_list(v);
      } else if (arg == "--gantt") {
        want_gantt = true;
      } else if (arg == "--csv") {
        want_csv = true;
      } else if (arg == "--no-payments") {
        want_payments = false;
      } else {
        std::cerr << "unknown option: " << arg << '\n';
        return usage(argv[0]);
      }
    } catch (const std::exception& e) {
      std::cerr << "bad value for " << arg << ": " << e.what() << '\n';
      return 2;
    }
  }
  if (w.empty() || z.size() + 1 != w.size()) {
    std::cerr << "need --w with n entries and --z with n-1 entries\n";
    return usage(argv[0]);
  }

  const bool tracing = !trace_out.empty() || trace_summary;
  if (tracing) {
    if (logical_clock) dls::obs::use_logical_clock();
    dls::obs::set_active(true);
  }

  try {
    const dls::net::LinearNetwork network(w, z);
    std::vector<double> alpha;
    double makespan = 0.0;
    if (!startup.empty()) {
      const auto sol =
          dls::dlt::solve_linear_boundary_affine(network, startup);
      alpha = sol.alpha;
      makespan = sol.makespan;
    } else {
      const auto sol = dls::dlt::solve_linear_boundary(network);
      alpha = sol.alpha;
      makespan = sol.makespan;
    }

    const std::vector<double> finish =
        startup.empty()
            ? dls::dlt::finish_times(network, alpha)
            : dls::dlt::affine_finish_times(network, startup, alpha);

    dls::common::Table table({{"processor", dls::common::Align::kLeft},
                              {"alpha"},
                              {"finish"}});
    for (std::size_t i = 0; i < network.size(); ++i) {
      table.add_row({"P" + std::to_string(i),
                     dls::common::Cell(alpha[i], 6),
                     dls::common::Cell(finish[i], 6)});
    }
    if (want_csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
      std::cout << "makespan: " << makespan << '\n';
    }

    if (want_gantt && startup.empty()) {
      const auto solution = dls::dlt::solve_linear_boundary(network);
      const auto result = dls::sim::execute_linear(
          network, dls::sim::ExecutionPlan::compliant(network, solution));
      std::cout << '\n';
      render_gantt(std::cout, result.trace, {.width = 80});
    } else if (want_gantt) {
      std::cout << "(--gantt is only available for the linear cost model)\n";
    }

    if (want_payments && network.size() >= 2 && startup.empty()) {
      const auto result = dls::core::assess_compliant(
          network, w, dls::core::MechanismConfig{});
      std::cout << "\nDLS-LBL payments (all-truthful):\n";
      dls::common::Table pay({{"processor", dls::common::Align::kLeft},
                              {"payment Q"},
                              {"utility U"}});
      for (const auto& a : result.processors) {
        pay.add_row({"P" + std::to_string(a.index),
                     dls::common::Cell(a.money.payment, 6),
                     dls::common::Cell(a.money.utility, 6)});
      }
      if (want_csv) pay.print_csv(std::cout);
      else pay.print(std::cout);
    }
  } catch (const dls::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  if (tracing) {
    dls::obs::set_active(false);
    if (trace_summary) {
      // Summary and file export share one drain, so peel events once.
      const auto events = dls::obs::TraceSink::global().drain();
      const auto metrics = dls::obs::MetricsRegistry::global().snapshot();
      std::cout << '\n';
      dls::obs::dump_summary(std::cout, events, metrics);
      if (!trace_out.empty()) {
        std::ofstream out(trace_out);
        if (!out) {
          std::cerr << "error: cannot write trace to " << trace_out << '\n';
          return 1;
        }
        dls::obs::write_chrome_trace(out, events, &metrics);
      }
    } else if (!trace_out.empty() &&
               !dls::obs::export_chrome_trace_file(trace_out)) {
      std::cerr << "error: cannot write trace to " << trace_out << '\n';
      return 1;
    }
  }
  return 0;
}
