// Scheduler daemon walkthrough: an in-process SchedulerService serving
// three clients over the framed transport. The demo exercises the whole
// service surface — a plain solve, a payments solve, a warm cache hit
// (bit-identical to the cold response), queue-full shedding with the
// client's probe-backoff retry, and an already-expired deadline — then
// prints the service-side counters.
#include <cinttypes>
#include <cstdio>
#include <thread>
#include <vector>

#include "protocol/recovery.hpp"
#include "serve/client.hpp"
#include "serve/service.hpp"

namespace {

void print_response(const char* label,
                    const dls::serve::ScheduleResponse& response) {
  std::printf("%-22s status=%-7s cache_hit=%d", label,
              dls::serve::to_string(response.status).c_str(),
              response.cache_hit ? 1 : 0);
  if (response.status == dls::serve::ScheduleStatus::kOk) {
    std::printf(" makespan=%.6f alpha=[", response.makespan);
    for (std::size_t i = 0; i < response.alpha.size(); ++i) {
      std::printf("%s%.4f", i ? ", " : "", response.alpha[i]);
    }
    std::printf("]");
    if (!response.payments.empty()) {
      std::printf(" total_payment=%.4f", response.total_payment);
    }
  }
  if (!response.error.empty()) {
    std::printf(" error=\"%s\"", response.error.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  dls::serve::ServiceConfig config;
  config.queue_capacity = 2;  // small, so the shed demo triggers easily
  config.cache_capacity = 16;
  dls::serve::SchedulerService service(config);

  const std::vector<double> w = {1.0, 1.2, 0.9, 1.1};
  const std::vector<double> z = {0.15, 0.1, 0.2};

  std::printf("=== scheduler_daemon: framed transport demo ===\n\n");

  // One client per "site", all multiplexed onto the same service.
  dls::serve::SchedulerClient alice(service.connect());
  dls::serve::SchedulerClient bob(service.connect());
  dls::serve::SchedulerClient carol(service.connect());

  // Cold solve, then the identical instance again: the second response
  // is served from the LRU cache and is bit-identical to the first.
  const auto cold = alice.schedule(w, z);
  print_response("alice cold solve:", cold);
  const auto warm = bob.schedule(w, z);
  print_response("bob warm (cached):", warm);
  std::printf("bit-identical: %s\n\n",
              cold.alpha == warm.alpha && cold.makespan == warm.makespan
                  ? "yes"
                  : "NO (bug)");

  // Payments ride along when asked for.
  dls::serve::ScheduleOptions pay;
  pay.want_payments = true;
  print_response("carol + payments:", carol.schedule(w, z, pay));

  // Backpressure: hold the dispatcher so the two queue slots fill, then
  // watch the third request get shed — and succeed once the client's
  // probe-backoff retry finds the queue drained.
  service.pause();
  const std::vector<double> w1 = {1.0, 2.0}, w2 = {1.0, 3.0};
  const std::vector<double> w3 = {1.0, 4.0}, z1 = {0.1};
  std::thread q1([&] { alice.schedule(w1, z1); });
  std::thread q2([&] { bob.schedule(w2, z1); });
  // Give both queued requests time to be admitted before overflowing.
  while (service.stats().admitted < 5) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  dls::protocol::HeartbeatConfig retry;
  retry.period = 0.05;  // seconds between resends
  retry.retry_budget = 10;
  std::thread resumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    service.resume();
  });
  const auto retried = carol.schedule_with_retry(w3, z1, {}, retry);
  print_response("carol shed+retry:", retried);
  q1.join();
  q2.join();
  resumer.join();

  // A request whose deadline already passed is refused without solving.
  dls::serve::ScheduleOptions expired;
  expired.deadline_us = 1e-3;  // one nanosecond: expired on arrival
  print_response("alice expired:", alice.schedule(w, z, expired));

  const dls::serve::ServiceStats stats = service.stats();
  std::printf(
      "\n--- service counters ---\n"
      "received=%" PRIu64 " admitted=%" PRIu64 " ok=%" PRIu64
      " shed=%" PRIu64 " expired=%" PRIu64 " errors=%" PRIu64 "\n",
      stats.received, stats.admitted, stats.ok, stats.shed, stats.expired,
      stats.errors);
  std::printf("cache: hits=%" PRIu64 " misses=%" PRIu64 " size=%zu\n",
              service.cache().hits(), service.cache().misses(),
              service.cache().size());

  alice.close();
  bob.close();
  carol.close();
  service.stop();
  return warm.cache_hit && retried.status == dls::serve::ScheduleStatus::kOk
             ? 0
             : 1;
}
