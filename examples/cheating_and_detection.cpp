// Runs the full four-phase DLS-LBL protocol against one deviant of each
// class from Lemma 5.1 and prints the forensic report: what was detected,
// who was fined, and how the deviant's utility compares with honesty.
#include <iomanip>
#include <iostream>

#include "agents/agent.hpp"
#include "common/table.hpp"
#include "net/networks.hpp"
#include "protocol/runner.hpp"

namespace {

using dls::agents::Behavior;
using dls::agents::Population;
using dls::agents::StrategicAgent;

dls::net::LinearNetwork make_network() {
  return dls::net::LinearNetwork({1.0, 1.2, 0.8, 1.5}, {0.2, 0.15, 0.25});
}

Population make_population(std::size_t deviant, const Behavior& behavior) {
  std::vector<StrategicAgent> agents;
  const dls::net::LinearNetwork net = make_network();
  for (std::size_t i = 1; i < net.size(); ++i) {
    agents.push_back(StrategicAgent{
        i, net.w(i), i == deviant ? behavior : Behavior::truthful()});
  }
  return Population(std::move(agents));
}

}  // namespace

int main() {
  using dls::common::Align;
  using dls::common::Cell;
  using dls::common::Table;

  const dls::net::LinearNetwork network = make_network();
  dls::protocol::ProtocolOptions options;
  options.mechanism.audit_probability = 1.0;  // audits always fire here

  const dls::protocol::RunReport honest = dls::protocol::run_protocol(
      network, make_population(0, Behavior::truthful()), options);
  std::cout << "Honest baseline utilities: ";
  for (std::size_t i = 1; i < honest.processors.size(); ++i) {
    std::cout << "U" << i << "=" << std::setprecision(4)
              << honest.processors[i].utility << "  ";
  }
  std::cout << "\n\n";

  const std::size_t deviant = 2;
  const std::vector<Behavior> rogues = {
      Behavior::contradictor(),      Behavior::miscomputer(),
      Behavior::load_shedder(0.5),   Behavior::overcharger(0.25),
      Behavior::false_accuser(),     Behavior::slow_execution(1.5),
      Behavior::underbid(0.6),       Behavior::overbid(1.8)};

  Table table({{"deviation", Align::kLeft},
               {"detected as", Align::kLeft},
               {"aborted", Align::kLeft},
               {"fine", Align::kRight},
               {"U(deviant)", Align::kRight},
               {"U(honest)", Align::kRight}});

  for (const Behavior& behavior : rogues) {
    const dls::protocol::RunReport report = dls::protocol::run_protocol(
        network, make_population(deviant, behavior), options);
    std::string detected = "—";
    double fine = 0.0;
    for (const auto& inc : report.incidents) {
      const std::size_t loser =
          inc.substantiated ? inc.accused : inc.reporter;
      if (loser == deviant) {
        detected = to_string(inc.kind);
        fine = inc.fine;
      }
    }
    table.add_row({behavior.name, detected,
                   report.aborted ? "yes" : "no", Cell(fine, 2),
                   Cell(report.processors[deviant].utility, 4),
                   Cell(honest.processors[deviant].utility, 4)});
  }
  table.print(std::cout);

  std::cout << "\nEvery deviation leaves the deviant at or below the "
               "honest utility;\nthe finable ones (Lemma 5.1) are "
               "strictly ruinous. Bids off the truth lose\nonly the bonus "
               "— exactly the strategyproofness margin.\n";
  return 0;
}
