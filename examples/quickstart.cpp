// Quickstart: schedule a divisible load on a 5-processor daisy chain with
// the DLS-LBL mechanism and look at who computes what, who finishes when,
// and who gets paid how much.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "common/table.hpp"
#include "core/dls_lbl.hpp"
#include "dlt/linear.hpp"
#include "net/networks.hpp"

int main() {
  using dls::common::Align;
  using dls::common::Table;

  // A heterogeneous chain: the root P0 holds the load; links get slower
  // toward the far end. Rates are "seconds per unit load".
  const dls::net::LinearNetwork network(
      /*w=*/{1.0, 0.8, 1.2, 0.6, 1.5},
      /*z=*/{0.10, 0.15, 0.20, 0.30});

  std::cout << "Network: " << network.describe() << "\n\n";

  // --- Step 1: the optimal allocation (Algorithm 1). --------------------
  const dls::dlt::LinearSolution solution =
      dls::dlt::solve_linear_boundary(network);

  std::cout << "Optimal allocation (Theorem 2.1: everyone finishes at T = "
            << solution.makespan << "):\n\n";
  {
    Table table({{"processor", Align::kLeft},
                 {"alpha", Align::kRight},
                 {"alpha_hat", Align::kRight},
                 {"D (received)", Align::kRight},
                 {"finish time", Align::kRight}});
    const auto finish = dls::dlt::finish_times(network, solution.alpha);
    for (std::size_t i = 0; i < network.size(); ++i) {
      table.add_row({"P" + std::to_string(i),
                     dls::common::Cell(solution.alpha[i], 4),
                     dls::common::Cell(solution.alpha_hat[i], 4),
                     dls::common::Cell(solution.received[i], 4),
                     dls::common::Cell(finish[i], 4)});
    }
    table.print(std::cout);
  }

  // --- Step 2: the mechanism's payments. --------------------------------
  // With every processor truthful and compliant, utilities are exactly
  // the bonuses B_j = w_{j-1} - w̄_{j-1} >= 0 (voluntary participation).
  std::vector<double> actual_rates(network.processing_times().begin(),
                                   network.processing_times().end());
  const dls::core::DlsLblResult result = dls::core::assess_compliant(
      network, actual_rates, dls::core::MechanismConfig{});

  std::cout << "\nDLS-LBL payments for the truthful run:\n\n";
  {
    Table table({{"processor", Align::kLeft},
                 {"cost -V", Align::kRight},
                 {"compensation C", Align::kRight},
                 {"bonus B", Align::kRight},
                 {"payment Q", Align::kRight},
                 {"utility U", Align::kRight}});
    for (const auto& a : result.processors) {
      table.add_row({"P" + std::to_string(a.index),
                     dls::common::Cell(-a.money.valuation, 4),
                     dls::common::Cell(a.money.compensation, 4),
                     dls::common::Cell(a.money.bonus, 4),
                     dls::common::Cell(a.money.payment, 4),
                     dls::common::Cell(a.money.utility, 4)});
    }
    table.print(std::cout);
  }
  std::cout << "\nMechanism outlay: " << result.mechanism_cost
            << " (total payments incl. root reimbursement)\n";
  std::cout << "Every strategic utility is >= 0 and maximised by truthful "
               "bidding (Theorems 5.3-5.4).\n";
  return 0;
}
