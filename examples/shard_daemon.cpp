// Multi-shard scheduler daemon over real sockets.
//
// Two modes:
//
//  * `shard_daemon` (no arguments) — self-contained demo: boots a
//    3-shard federation behind a ShardRouter, exposes it on an
//    ephemeral TCP socket, and drives a client through cold solve /
//    warm cache hit / replicated quorum solve, printing the federation
//    counters. Exits 0 when the warm answer is bit-identical.
//
//  * `shard_daemon --listen tcp|unix:PATH [--shards N]
//    [--replication R] [--cache N]` — long-running daemon for the
//    multi-process conformance and soak tests: prints
//    "LISTENING <endpoint>" on stdout once accepting, serves until
//    stdin reaches EOF (the parent closing the pipe is the shutdown
//    signal), then prints final counters and exits.
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/router.hpp"
#include "serve/service.hpp"
#include "serve/socket.hpp"

namespace {

struct Federation {
  std::vector<std::unique_ptr<dls::serve::SchedulerService>> shards;
  std::unique_ptr<dls::serve::ShardRouter> router;
};

Federation make_federation(std::size_t shard_count, std::size_t replication,
                           std::size_t cache_capacity) {
  Federation fed;
  for (std::size_t i = 0; i < shard_count; ++i) {
    dls::serve::ServiceConfig config;
    config.cache_capacity = cache_capacity;
    fed.shards.push_back(
        std::make_unique<dls::serve::SchedulerService>(config));
  }
  dls::serve::RouterConfig router;
  router.shard_count = shard_count;
  router.replication = replication;
  auto* shards = &fed.shards;
  router.connect = [shards](std::size_t shard) {
    return std::make_unique<dls::serve::PipeEnd>(
        (*shards)[shard]->connect());
  };
  for (auto& shard : fed.shards) router.local.push_back(shard.get());
  fed.router = std::make_unique<dls::serve::ShardRouter>(router);
  return fed;
}

void print_counters(const Federation& fed) {
  const dls::serve::RouterStats stats = fed.router->stats();
  std::printf("router: received=%" PRIu64 " inline=%" PRIu64
              " forwarded=%" PRIu64 " ok=%" PRIu64 " refused=%" PRIu64
              " quorum{checked=%" PRIu64 " agreed=%" PRIu64
              " divergence=%" PRIu64 "}\n",
              stats.received, stats.inline_hits, stats.forwarded,
              stats.answered_ok, stats.refused, stats.quorum_checked,
              stats.quorum_agreed, stats.quorum_divergence);
  for (std::size_t i = 0; i < fed.shards.size(); ++i) {
    const dls::serve::ServiceStats s = fed.shards[i]->stats();
    std::printf("shard %zu: received=%" PRIu64 " ok=%" PRIu64
                " cache{hits=%" PRIu64 " misses=%" PRIu64 "}\n",
                i, s.received, s.ok, fed.shards[i]->cache().hits(),
                fed.shards[i]->cache().misses());
  }
}

/// Accepts client connections until the listener is closed.
void accept_loop(dls::serve::SocketListener* listener,
                 dls::serve::ShardRouter* router) {
  while (listener->valid()) {
    auto client = listener->accept(/*timeout_s=*/0.25);
    if (client) router->adopt(std::move(client));
  }
}

int run_daemon(const std::string& listen, std::size_t shard_count,
               std::size_t replication, std::size_t cache_capacity) {
  Federation fed =
      make_federation(shard_count, replication, cache_capacity);
  dls::serve::SocketListener listener =
      listen.rfind("unix:", 0) == 0
          ? dls::serve::SocketListener::listen_unix(listen.substr(5))
          : dls::serve::SocketListener::listen_tcp(0);
  std::printf("LISTENING %s\n", listener.endpoint().c_str());
  std::fflush(stdout);

  std::thread acceptor(accept_loop, &listener, fed.router.get());

  // Serve until the parent closes our stdin — the portable "please
  // exit" signal for a fork/exec'd test daemon.
  char buf[64];
  for (;;) {
    const ssize_t n = ::read(STDIN_FILENO, buf, sizeof(buf));
    if (n <= 0) break;
  }
  listener.close();
  acceptor.join();
  fed.router->stop();
  for (auto& shard : fed.shards) shard->stop();
  print_counters(fed);
  return 0;
}

int run_demo() {
  std::printf("=== shard_daemon: sharded federation over TCP ===\n\n");
  Federation fed = make_federation(/*shard_count=*/3, /*replication=*/1,
                                   /*cache_capacity=*/64);
  dls::serve::SocketListener listener =
      dls::serve::SocketListener::listen_tcp(0);
  std::printf("listening on %s\n", listener.endpoint().c_str());
  std::thread acceptor(accept_loop, &listener, fed.router.get());

  dls::serve::SchedulerClient client(
      dls::serve::connect_endpoint(listener.endpoint()));
  const std::vector<double> w = {1.0, 1.2, 0.9, 1.1};
  const std::vector<double> z = {0.15, 0.1, 0.2};

  const auto cold = client.schedule(w, z);
  const auto warm = client.schedule(w, z);
  const bool identical =
      cold.status == dls::serve::ScheduleStatus::kOk &&
      warm.status == dls::serve::ScheduleStatus::kOk &&
      cold.alpha == warm.alpha && cold.makespan == warm.makespan;
  std::printf("cold status=%s makespan=%.6f\n",
              dls::serve::to_string(cold.status).c_str(), cold.makespan);
  std::printf("warm status=%s cache_served=%d\n",
              dls::serve::to_string(warm.status).c_str(),
              warm.cache_hit ? 1 : 0);
  std::printf("bit-identical: %s\n\n", identical ? "yes" : "NO (bug)");

  // A replicated federation cross-checks every solve across two shards.
  Federation quorum = make_federation(/*shard_count=*/3, /*replication=*/2,
                                      /*cache_capacity=*/64);
  dls::serve::SchedulerClient qclient(quorum.router->connect());
  const auto checked = qclient.schedule(w, z);
  std::printf("replicated solve status=%s (quorum checked=%" PRIu64
              ", divergence=%" PRIu64 ")\n\n",
              dls::serve::to_string(checked.status).c_str(),
              quorum.router->stats().quorum_checked,
              quorum.router->stats().quorum_divergence);

  print_counters(fed);

  client.close();
  qclient.close();
  listener.close();
  acceptor.join();
  fed.router->stop();
  for (auto& shard : fed.shards) shard->stop();
  quorum.router->stop();
  for (auto& shard : quorum.shards) shard->stop();
  return identical &&
                 checked.status == dls::serve::ScheduleStatus::kOk
             ? 0
             : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string listen;
  std::size_t shard_count = 3;
  std::size_t replication = 1;
  std::size_t cache_capacity = 256;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--listen") {
      listen = next();
    } else if (arg == "--shards") {
      shard_count = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--replication") {
      replication = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--cache") {
      cache_capacity = static_cast<std::size_t>(std::atoi(next()));
    } else {
      std::fprintf(stderr,
                   "usage: shard_daemon [--listen tcp|unix:PATH] "
                   "[--shards N] [--replication R] [--cache N]\n");
      return 2;
    }
  }
  if (shard_count == 0 || replication == 0) {
    std::fprintf(stderr, "--shards and --replication must be >= 1\n");
    return 2;
  }
  if (!listen.empty()) {
    return run_daemon(listen, shard_count, replication, cache_capacity);
  }
  return run_demo();
}
