// A season of a federated compute market: five autonomous organisations
// chained behind a broker (the root) process one divisible job per round
// under DLS-LBL. Org C is opportunistic — every few rounds it tries a
// different trick (misreporting, running slow, shedding, overcharging).
// The season ledger shows what the paper's incentives do over time:
// honest organisations compound steady profits, the trickster's wealth
// craters on every finable attempt and lags even on the "legal" ones.
#include <iomanip>
#include <iostream>

#include "agents/agent.hpp"
#include "common/table.hpp"
#include "net/networks.hpp"
#include "protocol/runner.hpp"

namespace {

using dls::agents::Behavior;
using dls::agents::Population;
using dls::agents::StrategicAgent;

const char* kOrgNames[] = {"Broker", "OrgA", "OrgB", "OrgC", "OrgD", "OrgE"};

}  // namespace

int main() {
  const dls::net::LinearNetwork network({1.0, 1.1, 0.7, 0.9, 1.4, 0.8},
                                        {0.12, 0.08, 0.15, 0.2, 0.1});
  const std::size_t trickster = 3;  // OrgC

  // The trickster's playbook, one entry per season round (empty =
  // behave).
  const std::vector<Behavior> playbook = {
      Behavior::truthful(),          Behavior::underbid(0.6),
      Behavior::truthful(),          Behavior::slow_execution(1.5),
      Behavior::overcharger(0.3),    Behavior::truthful(),
      Behavior::load_shedder(0.35),  Behavior::truthful(),
      Behavior::overbid(1.8),        Behavior::truthful(),
  };

  std::vector<double> wealth(network.size(), 0.0);
  dls::common::Table table({{"round"},
                            {"OrgC plays", dls::common::Align::kLeft},
                            {"incident", dls::common::Align::kLeft},
                            {"OrgC round U"},
                            {"honest mean U"}});

  for (std::size_t round = 0; round < playbook.size(); ++round) {
    std::vector<StrategicAgent> agents;
    for (std::size_t i = 1; i < network.size(); ++i) {
      agents.push_back(StrategicAgent{
          i, network.w(i),
          i == trickster ? playbook[round] : Behavior::truthful()});
    }
    dls::protocol::ProtocolOptions options;
    options.round = round + 1;
    options.seed = 1000 + round;
    options.mechanism.audit_probability = 0.5;
    const auto report = dls::protocol::run_protocol(
        network, Population(std::move(agents)), options);

    double honest_sum = 0.0;
    std::size_t honest_count = 0;
    for (std::size_t i = 1; i < network.size(); ++i) {
      wealth[i] += report.processors[i].utility;
      if (i != trickster) {
        honest_sum += report.processors[i].utility;
        ++honest_count;
      }
    }
    std::string incident = "—";
    for (const auto& inc : report.incidents) {
      incident = to_string(inc.kind) +
                 (inc.substantiated ? " (fined)" : " (dismissed)");
    }
    table.add_row({round + 1, playbook[round].name, incident,
                   dls::common::Cell(report.processors[trickster].utility, 3),
                   dls::common::Cell(
                       honest_sum / static_cast<double>(honest_count), 3)});
  }
  table.print(std::cout);

  std::cout << "\nSeason wealth:\n";
  dls::common::Table season({{"organisation", dls::common::Align::kLeft},
                             {"cumulative utility"}});
  for (std::size_t i = 1; i < network.size(); ++i) {
    season.add_row({kOrgNames[i], dls::common::Cell(wealth[i], 3)});
  }
  season.print(std::cout);
  std::cout << "\nOrgC's tricks either get fined outright or quietly "
               "under-earn the truthful rounds —\nafter a season the "
               "dominant strategy is obvious on the balance sheet.\n";
  return 0;
}
