// Reproduces Figure 2 of the paper: the Gantt chart of an optimal
// execution on a boundary-origination linear network, with communication
// drawn above each processor's axis and computation below it.
//
// Also demonstrates what the chart looks like when a processor deviates
// (sheds load), so the visual contrast with the equal-finish optimum is
// obvious.
#include <iostream>

#include "dlt/linear.hpp"
#include "net/networks.hpp"
#include "sim/gantt.hpp"
#include "sim/linear_execution.hpp"

int main() {
  const dls::net::LinearNetwork network(
      /*w=*/{1.0, 1.0, 1.0, 1.0, 1.0},
      /*z=*/{0.2, 0.2, 0.2, 0.2});
  const auto solution = dls::dlt::solve_linear_boundary(network);

  // The compliant execution: every finish lines up (Theorem 2.1).
  {
    const auto plan =
        dls::sim::ExecutionPlan::compliant(network, solution);
    const auto result = dls::sim::execute_linear(network, plan);
    dls::sim::GanttOptions options;
    options.width = 88;
    options.title =
        "Figure 2 — optimal execution on a 5-processor chain "
        "('>' send, '<' receive, '#' compute)";
    render_gantt(std::cout, result.trace, options);
    std::cout << "makespan = " << result.makespan
              << " (solver promised " << solution.makespan << ")\n\n";
  }

  // The same chain when P1 sheds 60% of its share: its compute bar
  // shrinks, everyone downstream computes longer, and the finish times
  // fan out — the schedule is visibly no longer optimal.
  {
    auto plan = dls::sim::ExecutionPlan::compliant(network, solution);
    plan.retain_fraction[1] *= 0.4;
    const auto result = dls::sim::execute_linear(network, plan);
    dls::sim::GanttOptions options;
    options.width = 88;
    options.title = "Same chain, P1 sheds 60% of its assignment:";
    render_gantt(std::cout, result.trace, options);
    std::cout << "makespan = " << result.makespan
              << " (optimum was " << solution.makespan << ")\n";
  }
  return 0;
}
