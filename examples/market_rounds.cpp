// A repeated "market": four grid operators sell compute on a chain, one
// of them (P2) experiments with its bid multiplier between rounds using
// best-response learning. Under DLS-LBL the experiments all lose money
// relative to the truth, so the learner converges to — and stays at —
// truthful bidding.
#include <iomanip>
#include <iostream>

#include "agents/agent.hpp"
#include "common/table.hpp"
#include "net/networks.hpp"
#include "protocol/runner.hpp"

namespace {

using dls::agents::Behavior;
using dls::agents::Population;
using dls::agents::StrategicAgent;

Behavior bid_multiplier(double factor) {
  if (factor < 1.0) return Behavior::underbid(factor);
  if (factor > 1.0) return Behavior::overbid(factor);
  return Behavior::truthful();
}

}  // namespace

int main() {
  using dls::common::Align;
  using dls::common::Cell;
  using dls::common::Table;

  const dls::net::LinearNetwork network({1.0, 1.3, 0.9, 1.1},
                                        {0.2, 0.1, 0.3});
  const std::size_t learner = 2;
  const std::vector<double> candidates = {0.5, 0.7, 0.85, 1.0,
                                          1.15, 1.4, 2.0};

  double current = 0.5;  // round 0: lie aggressively to grab load
  Table table({{"round", Align::kRight},
               {"multiplier tried", Align::kLeft},
               {"best multiplier", Align::kRight},
               {"best utility", Align::kRight}});

  for (int round = 1; round <= 6; ++round) {
    double best_u = -1e300;
    double best_mult = current;
    std::string tried;
    for (const double candidate : candidates) {
      std::vector<StrategicAgent> agents;
      for (std::size_t i = 1; i < network.size(); ++i) {
        agents.push_back(StrategicAgent{
            i, network.w(i),
            i == learner ? bid_multiplier(candidate) : Behavior::truthful()});
      }
      dls::protocol::ProtocolOptions options;
      options.round = static_cast<std::uint64_t>(round);
      options.seed = static_cast<std::uint64_t>(round) * 977;
      const auto report = dls::protocol::run_protocol(
          network, Population(std::move(agents)), options);
      const double u = report.processors[learner].utility;
      if (!tried.empty()) tried += " ";
      {
        std::ostringstream os;
        os << candidate << ":" << std::fixed << std::setprecision(3) << u;
        tried += os.str();
      }
      if (u > best_u) {
        best_u = u;
        best_mult = candidate;
      }
    }
    current = best_mult;
    table.add_row(
        {round, tried, Cell(best_mult, 2), Cell(best_u, 4)});
  }
  table.print(std::cout);
  std::cout << "\nThe learner settles on multiplier "
            << std::setprecision(3) << current
            << " — truthful bidding is the stable best response "
               "(Theorem 5.3).\n";
  return 0;
}
