// Failover walkthrough: a six-processor chain loses P3 at 40% of its
// assigned work. The round is played through the fault-tolerant runner:
// heartbeats stop, the root probes with exponential backoff until the
// retry budget confirms the crash, Algorithm 1 is re-run over the
// surviving prefix (P0..P2), and the residual load is redistributed.
// Settlement pays the victim its verified partial work (the E_j rule),
// pays survivors for the extra load they absorbed, and fines nobody.
#include <iomanip>
#include <iostream>

#include "agents/agent.hpp"
#include "common/table.hpp"
#include "net/networks.hpp"
#include "protocol/recovery.hpp"
#include "sim/faults.hpp"
#include "sim/gantt.hpp"

int main() {
  using dls::common::Cell;
  using dls::common::Table;

  const dls::net::LinearNetwork network({1.0, 1.2, 0.9, 1.1, 1.0, 1.3},
                                        {0.15, 0.1, 0.2, 0.1, 0.15});
  std::vector<dls::agents::StrategicAgent> agents;
  for (std::size_t i = 1; i < network.size(); ++i) {
    agents.push_back(dls::agents::StrategicAgent{
        i, network.w(i), dls::agents::Behavior::truthful()});
  }

  dls::protocol::ProtocolOptions options;
  options.seed = 2026;
  dls::protocol::FaultToleranceOptions ft;
  ft.faults = dls::sim::FaultPlan{}.crash_at_work(3, 0.4);

  const dls::protocol::FtRunReport report = dls::protocol::run_protocol_ft(
      network, dls::agents::Population(std::move(agents)), options, ft);

  std::cout << "=== Failover demo: P3 crashes at 40% of its work ===\n\n";

  std::cout << "--- Phase III under the fault (crash truncates P3) ---\n";
  dls::sim::render_gantt(std::cout, report.round.execution->trace,
                         {.width = 84, .title = "faulty execution"});

  if (!report.any_crash || report.crashes.empty()) {
    std::cout << "unexpected: no crash registered\n";
    return 1;
  }
  const dls::protocol::CrashSettlement& crash = report.crashes.front();
  std::cout << "\n--- Detection ---\n"
            << "crash at t=" << std::fixed << std::setprecision(3)
            << crash.detection.crash_time << ", confirmed at t="
            << crash.detection.confirmed_at << " after "
            << crash.detection.probes_sent << " probes ("
            << crash.detection.timeouts << " timeouts); latency "
            << crash.detection.latency() << "\n";

  std::cout << "\n--- Recovery pass over the surviving prefix ---\n"
            << "residual load: " << report.residual_load
            << " redistributed from t=" << report.recovery_start << "\n";
  if (report.recovery_execution) {
    dls::sim::render_gantt(std::cout, report.recovery_execution->trace,
                          {.width = 84, .title = "recovery (unit load, "
                                                  "scales by residual)"});
  }

  std::cout << "\n--- Settlement ---\n";
  Table table({{"proc"},
               {"assigned"},
               {"computed"},
               {"payment"},
               {"fines"},
               {"utility"},
               {"note"}});
  for (const auto& p : report.round.processors) {
    std::string note;
    if (p.index == crash.processor) {
      note = "crashed; E_j settlement, no fine";
    } else if (p.computed > p.assigned + 1e-9) {
      note = "survivor; absorbed recovery load";
    }
    table.add_row({p.index, Cell(p.assigned, 4), Cell(p.computed, 4),
                   Cell(p.payment, 4), Cell(p.fines, 2), Cell(p.utility, 4),
                   note});
  }
  table.print(std::cout);

  std::cout << "\nledger conservation residual: "
            << std::scientific
            << report.round.ledger.conservation_residual() << std::fixed
            << "\nmakespan: planned " << std::setprecision(3)
            << report.round.solution.makespan << " -> degraded "
            << report.degraded_makespan << "\n\nFinal ledger:\n";
  report.round.ledger.print(std::cout);
  return 0;
}
